//! Determinism cross-check for the parallel page executor: on Figure 3/4
//! sweep points, the parallel path and the `AP_SEQUENTIAL` oracle must
//! produce bit-identical `RunReport`s (cycles, stats, checksums), identical
//! trace event streams, and identical `T_A`/`T_P`/`T_C` phase totals.
//!
//! This is the acceptance gate for the parallel executor: host-thread
//! scheduling may reorder the *execution* of page functions, but nothing
//! observable about the simulation — clock, statistics, interrupts, traces —
//! is allowed to move.

use ap_apps::{App, RunReport, SystemKind};
use ap_trace::phases::PhaseTotals;
use ap_trace::session::{begin, finish, SessionConfig};
use ap_trace::{set_filter, Filter};
use proptest::prelude::*;
use radram::{set_force_sequential, RadramConfig};
use std::sync::Mutex;

/// Serializes the tests in this binary: they toggle the process-global
/// sequential-executor switch, the trace filter and the trace session.
static GLOBALS_LOCK: Mutex<()> = Mutex::new(());

/// Runs one Radram point under the chosen executor with a trace session
/// active, returning everything an executor could possibly perturb.
fn run_traced(
    app: App,
    pages: f64,
    cfg: &RadramConfig,
    sequential: bool,
) -> (RunReport, Vec<ap_trace::Event>, PhaseTotals) {
    set_force_sequential(sequential);
    begin(SessionConfig::default());
    let report = app.run(SystemKind::Radram, pages, cfg);
    let trace = finish().expect("session active");
    set_force_sequential(false);
    let events: Vec<ap_trace::Event> = trace.all_events().copied().collect();
    let totals = PhaseTotals::of_trace(&trace);
    (report, events, totals)
}

#[test]
fn fig3_sweep_points_are_bit_identical_under_both_executors() {
    let _guard = GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_filter(Filter::ALL);
    active_pages::parallel::set_thread_budget(4);
    let cfg = RadramConfig::reference();
    // One representative per activation pattern: single broadcast batch
    // (database), shifted block moves (array), round-robin op rounds with
    // busy pages (mpeg), and diagonal waves with inter-page boundary copies
    // (dynamic-prog, which exercises the mid-batch flush fallback).
    for app in [App::Database, App::ArrayInsert, App::MpegMmx, App::DynProg] {
        // The quick-sweep grid of Figure 3/4, spanning the sub-page and the
        // multi-page (parallelizable) regions.
        for pages in [0.5, 2.0, 8.0] {
            let (seq_report, seq_events, seq_totals) = run_traced(app, pages, &cfg, true);
            let (par_report, par_events, par_totals) = run_traced(app, pages, &cfg, false);
            let label = format!("{} p={pages}", app.name());
            assert_eq!(seq_report, par_report, "{label}: RunReport diverges");
            assert_eq!(seq_totals, par_totals, "{label}: phase totals diverge");
            assert_eq!(seq_events.len(), par_events.len(), "{label}: trace event counts diverge");
            for (i, (s, p)) in seq_events.iter().zip(&par_events).enumerate() {
                assert_eq!(s, p, "{label}: trace event {i} diverges");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random kernels at random page counts: the two executors agree on the
    /// full `RunReport` (checksum, every cycle counter, every statistic).
    #[test]
    fn random_points_are_bit_identical(app_idx in 0usize..App::ALL.len(), pages in 1u32..12) {
        let _guard = GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_filter(Filter::ALL);
        active_pages::parallel::set_thread_budget(4);
        let app = App::ALL[app_idx];
        let cfg = RadramConfig::reference();
        set_force_sequential(true);
        let seq = app.run(SystemKind::Radram, f64::from(pages), &cfg);
        set_force_sequential(false);
        let par = app.run(SystemKind::Radram, f64::from(pages), &cfg);
        prop_assert_eq!(seq, par);
    }
}
