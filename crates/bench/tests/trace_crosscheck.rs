//! Cross-check: the traced `T_A`/`T_P`/`T_C` phase totals recovered from
//! the event stream must agree with `ap_analytic::calibrate`'s
//! counter-derived decomposition within 5% on Figure 3 array-sweep points.
//!
//! Agreement is the point of the whole tracing exercise: it shows the
//! aggregate counters the analytic model is calibrated from really do
//! decompose the simulated timeline the way Section 7.4 assumes — dispatch
//! spans sum to the activation cycles, page-logic spans to the compute
//! cycles, and the kernel envelope minus stalls and dispatch to the
//! processor cycles.

use ap_analytic::calibrate;
use ap_apps::{App, SystemKind};
use ap_bench::runner::RunSpec;
use ap_trace::phases::PhaseTotals;
use ap_trace::session::{begin, finish, SessionConfig};
use ap_trace::{chrome, set_filter, Filter};
use radram::RadramConfig;
use std::sync::Mutex;

/// Serializes the tests in this binary: both manipulate the process-global
/// subsystem filter.
static FILTER_LOCK: Mutex<()> = Mutex::new(());

/// Relative agreement within `tol` (absolute agreement for tiny values,
/// where the relative error is dominated by integer cycle granularity).
fn close(traced: f64, analytic: f64, tol: f64) -> bool {
    let scale = analytic.abs().max(1.0);
    (traced - analytic).abs() / scale <= tol
}

#[test]
fn traced_phases_match_analytic_calibration_on_fig3_array_points() {
    let _guard = FILTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_filter(Filter::ALL);
    let cfg = RadramConfig::reference();
    for app in [App::ArrayInsert, App::ArrayDelete, App::ArrayFind] {
        for pages in [1.0, 4.0] {
            begin(SessionConfig::default());
            let spec = RunSpec::new(app, SystemKind::Radram, pages, cfg.clone());
            let report = spec.execute();
            let trace = finish().expect("session active");

            let cal = calibrate(&report);
            let traced = PhaseTotals::of_trace(&trace);
            let label = format!("{} p={pages}", app.name());

            assert_eq!(
                traced.activations, cal.activations,
                "{label}: traced activation count diverges"
            );
            assert!(
                close(traced.t_a(), cal.t_a, 0.05),
                "{label}: T_A traced {} vs analytic {}",
                traced.t_a(),
                cal.t_a
            );
            assert!(
                close(traced.t_c(), cal.t_c, 0.05),
                "{label}: T_C traced {} vs analytic {}",
                traced.t_c(),
                cal.t_c
            );
            assert!(
                close(traced.t_p(), cal.t_p, 0.05),
                "{label}: T_P traced {} vs analytic {}",
                traced.t_p(),
                cal.t_p
            );

            // The same totals must survive the Chrome JSON round trip
            // (what `aptrace` computes from an exported file).
            let parsed = chrome::parse(&chrome::export(&trace, &spec.key())).expect("round trip");
            assert_eq!(PhaseTotals::of_chrome(&parsed), traced, "{label}: chrome totals diverge");

            // The session also carries the end-of-run aggregate counters.
            let kernel = trace
                .counters
                .iter()
                .find(|c| c.name == "kernel.cycles")
                .expect("kernel.cycles counter recorded");
            assert_eq!(kernel.value(), report.kernel_cycles);
        }
    }
    set_filter(Filter::NONE);
}

#[test]
fn tracing_does_not_change_simulated_cycles() {
    // Bit-identical reproduction with the tracer on, off, and on again:
    // instrumentation must only observe.
    let _guard = FILTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = RadramConfig::reference();
    let spec = RunSpec::new(App::Database, SystemKind::Radram, 2.0, cfg);

    set_filter(Filter::NONE);
    let untraced = spec.execute();

    set_filter(Filter::ALL);
    begin(SessionConfig::default());
    let traced = spec.execute();
    let trace = finish().unwrap();
    set_filter(Filter::NONE);

    assert_eq!(untraced, traced, "tracing perturbed the simulation");
    assert!(trace.all_events().count() > 0, "traced run collected no events");
}
