//! Determinism under parallelism, the engine's core contract: the quick
//! Figure 3/4 sweep must render byte-identical CSV at any worker count, and
//! a cache-warm re-run must return the identical bytes without re-simulating
//! a single point.

use ap_bench::runner::Runner;
use ap_bench::{experiments, render};
use ap_engine::{manifest, Engine};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ap-bench-determinism-{tag}-{}", std::process::id()))
}

#[test]
fn fig3_csv_is_byte_identical_across_worker_counts_and_cache_warmth() {
    let cache = temp_path("cache");
    let serial_manifest = temp_path("serial.jsonl");
    let parallel_manifest = temp_path("parallel.jsonl");
    let warm_manifest = temp_path("warm.jsonl");
    let _ = std::fs::remove_dir_all(&cache);
    for p in [&serial_manifest, &parallel_manifest, &warm_manifest] {
        let _ = std::fs::remove_file(p);
    }

    // One worker (AP_JOBS=1 equivalent), no cache: the reference output.
    let serial = Runner::with_engine(
        Engine::new().with_workers(1).without_cache().with_manifest(&serial_manifest),
    );
    let serial_csv = render::sweep_csv(&experiments::fig3_fig4(&serial, true));

    // Four workers (AP_JOBS=4 equivalent), cold cache: must produce the same
    // bytes even though completion order differs, and fills the cache.
    let parallel = Runner::with_engine(
        Engine::new().with_workers(4).with_cache_dir(&cache).with_manifest(&parallel_manifest),
    );
    let parallel_csv = render::sweep_csv(&experiments::fig3_fig4(&parallel, true));
    assert_eq!(serial_csv, parallel_csv, "CSV must not depend on the worker count");

    let serial_summary = manifest::summarize(&serial_manifest).unwrap();
    let cold_summary = manifest::summarize(&parallel_manifest).unwrap();
    assert!(serial_summary.total > 0);
    assert_eq!(serial_summary.total, cold_summary.total);
    assert_eq!(cold_summary.ok, cold_summary.total, "no point may fail");
    assert_eq!(cold_summary.cache_hits, 0, "cold run must simulate everything");

    // Warm run over the filled cache: identical bytes, zero simulations.
    let warm = Runner::with_engine(
        Engine::new().with_workers(4).with_cache_dir(&cache).with_manifest(&warm_manifest),
    );
    let warm_csv = render::sweep_csv(&experiments::fig3_fig4(&warm, true));
    assert_eq!(serial_csv, warm_csv, "cache replay must reproduce the exact bytes");

    let warm_summary = manifest::summarize(&warm_manifest).unwrap();
    assert_eq!(warm_summary.total, cold_summary.total);
    assert_eq!(
        warm_summary.cache_hits, warm_summary.total,
        "warm run must re-simulate nothing: {warm_summary:?}"
    );
    assert_eq!(warm_summary.cache_misses, 0);

    let _ = std::fs::remove_dir_all(&cache);
    for p in [&serial_manifest, &parallel_manifest, &warm_manifest] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sensitivity_figures_are_worker_count_invariant() {
    let serial = Runner::with_engine(Engine::new().with_workers(1).without_cache());
    let parallel = Runner::with_engine(Engine::new().with_workers(3).without_cache());
    let csv_of = |r: &Runner| {
        format!(
            "{}\n{}",
            render::sensitivity_csv("latency_ns", &experiments::fig8(r, true)),
            render::fig5_csv(&experiments::fig5(r, true)),
        )
    };
    assert_eq!(csv_of(&serial), csv_of(&parallel));
}
