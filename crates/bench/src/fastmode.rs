//! Two-tier execution harness: fast-vs-accurate cross-checks and the
//! `BENCH_fastmode.json` speed/error bench (DESIGN.md §13). The DSE grids
//! that used to live here moved to the `ap-dse` crate (DESIGN.md §15).
//!
//! The fast tier (`ExecMode::Fast`) runs full application semantics but
//! replaces per-access hierarchy simulation with counted estimates, so it
//! must be audited on two axes:
//!
//! * **functional identity** — checksums must match the accurate tier bit
//!   for bit on every point ([`cross_check`] panics otherwise);
//! * **cycle fidelity** — kernel-cycle estimates must stay inside a
//!   documented error envelope ([`CYCLE_ERROR_ENVELOPE`]), in the style of
//!   the Ramulator 2.0 re-evaluation papers: the fast tier is only useful if
//!   its error is *quantified*, not merely assumed small.
//!
//! The wall-clock rows reuse the host-timing machinery of the
//! `--bench-wallclock` harness (`radram::take_kernel_host_secs`), so
//! `BENCH_page_scaling.json` and `BENCH_fastmode.json` come from one
//! measurement path.

use crate::sweep::SweepPoint;
use ap_apps::{App, ExecMode, RunReport, SystemKind};
use radram::{take_kernel_host_secs, RadramConfig};

/// Documented bound on the fast tier's signed relative kernel-cycle error,
/// per point, against the accurate oracle. The measured maximum over the
/// full Figure 3/4 sweep (170 runs) is 0.349 and over the legacy DSE smoke
/// grid 0.346 (see `BENCH_fastmode.json`); the dominant contributors are
/// the no-op `invalidate_range` and the unmodelled branch predictor. CI,
/// `--mode both`, and the `dse` promotion pipeline fail any point outside
/// this bound.
pub const CYCLE_ERROR_ENVELOPE: f64 = 0.40;

/// The Figure 3 database point the ≥ 5x wall-clock gate is scored on. The
/// gate compares the **conventional (oracle-simulation) component** of the
/// run: RADram page kernels execute in bulk on host slices in *both* tiers
/// (per-access hierarchy modelling exists only on the processor side), so
/// the processor-side scan is where the fast tier can — and must — win.
///
/// 16 pages (an 8 MB address book) is the largest point with headroom: past
/// that both tiers become bound by the *host's* memory bandwidth streaming
/// the same record heads, and the ratio converges toward ~5x regardless of
/// how little modelling the fast tier does (DESIGN.md §13).
pub fn gate_pages(quick: bool) -> f64 {
    if quick {
        8.0
    } else {
        16.0
    }
}

/// One fast-vs-accurate comparison of a single run.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Application kernel.
    pub app: App,
    /// Which memory system.
    pub kind: SystemKind,
    /// Problem size in pages.
    pub pages: f64,
    /// Kernel cycles from the accurate oracle.
    pub accurate_cycles: u64,
    /// Kernel cycles from the fast tier.
    pub fast_cycles: u64,
}

impl CrossCheck {
    /// Signed relative kernel-cycle error of the fast tier:
    /// `(fast − accurate) / accurate`.
    pub fn relative_error(&self) -> f64 {
        if self.accurate_cycles == 0 {
            return 0.0;
        }
        (self.fast_cycles as f64 - self.accurate_cycles as f64) / self.accurate_cycles as f64
    }
}

/// Compares one accurate/fast report pair.
///
/// # Panics
///
/// Panics if the functional results (checksums) differ — the fast tier is
/// only allowed to approximate *time*, never *answers*.
pub fn check_pair(app: App, pages: f64, accurate: &RunReport, fast: &RunReport) -> CrossCheck {
    assert_eq!(accurate.system, fast.system);
    assert_eq!(
        accurate.checksum,
        fast.checksum,
        "fast tier diverged functionally: {} {} at {pages} pages",
        app.name(),
        accurate.system,
    );
    CrossCheck {
        app,
        kind: accurate.system,
        pages,
        accurate_cycles: accurate.kernel_cycles,
        fast_cycles: fast.kernel_cycles,
    }
}

/// Pairs up two sweeps of the same grid (accurate and fast) into per-run
/// cross-checks: two per sweep point (conventional and RADram).
///
/// # Panics
///
/// Panics if the sweeps cover different points or any checksum differs.
pub fn cross_check(
    accurate: &[(App, Vec<SweepPoint>)],
    fast: &[(App, Vec<SweepPoint>)],
) -> Vec<CrossCheck> {
    assert_eq!(accurate.len(), fast.len(), "sweeps cover different app sets");
    let mut checks = Vec::new();
    for ((app_a, pts_a), (app_f, pts_f)) in accurate.iter().zip(fast) {
        assert_eq!(app_a, app_f, "sweeps cover different app sets");
        assert_eq!(pts_a.len(), pts_f.len(), "{}: sweeps cover different sizes", app_a.name());
        for (a, f) in pts_a.iter().zip(pts_f) {
            assert_eq!(a.pages, f.pages, "{}: sweeps cover different sizes", app_a.name());
            checks.push(check_pair(*app_a, a.pages, &a.conventional, &f.conventional));
            checks.push(check_pair(*app_a, a.pages, &a.radram, &f.radram));
        }
    }
    checks
}

/// Largest absolute relative error over a set of cross-checks.
pub fn max_error(checks: &[CrossCheck]) -> f64 {
    checks.iter().map(|c| c.relative_error().abs()).fold(0.0, f64::max)
}

/// The checks that exceed the documented envelope (empty on a healthy run).
pub fn envelope_breaches(checks: &[CrossCheck]) -> Vec<&CrossCheck> {
    checks.iter().filter(|c| c.relative_error().abs() > CYCLE_ERROR_ENVELOPE).collect()
}

/// One app's row of the `BENCH_fastmode.json` bench: wall-clock on both
/// tiers plus the fast tier's error on each reported metric.
#[derive(Debug, Clone)]
pub struct FastmodeRow {
    /// Application kernel.
    pub app: App,
    /// Problem size in pages.
    pub pages: f64,
    /// Host seconds inside kernel regions, both systems, accurate tier
    /// (minimum over repeats).
    pub accurate_secs: f64,
    /// Host seconds inside kernel regions, both systems, fast tier.
    pub fast_secs: f64,
    /// Host seconds of the conventional (oracle-simulation) run alone,
    /// accurate tier.
    pub accurate_conv_secs: f64,
    /// Host seconds of the conventional run alone, fast tier.
    pub fast_conv_secs: f64,
    /// Signed relative error on conventional kernel cycles.
    pub conv_error: f64,
    /// Signed relative error on RADram kernel cycles.
    pub rad_error: f64,
    /// Signed relative error on the RADram-vs-conventional speedup.
    pub speedup_error: f64,
}

impl FastmodeRow {
    /// Wall-clock speedup of the fast tier over the accurate oracle, both
    /// systems combined.
    pub fn wall_speedup(&self) -> f64 {
        self.accurate_secs / self.fast_secs.max(1e-9)
    }

    /// Wall-clock speedup on the conventional (oracle-simulation) component
    /// alone — the metric the ≥ 5x gate is scored on (see [`gate_pages`]).
    pub fn oracle_speedup(&self) -> f64 {
        self.accurate_conv_secs / self.fast_conv_secs.max(1e-9)
    }
}

/// Runs `app` at `pages` on both systems on one tier, in-thread, returning
/// the host seconds spent inside the conventional and RADram kernel regions
/// (separately) plus the two reports.
fn measure(
    app: App,
    pages: f64,
    cfg: &RadramConfig,
    mode: ExecMode,
) -> (f64, f64, RunReport, RunReport) {
    let _ = take_kernel_host_secs(); // drain anything a previous caller left
    let conv = app.run_mode(SystemKind::Conventional, pages, cfg, mode);
    let conv_secs = take_kernel_host_secs();
    let rad = app.run_mode(SystemKind::Radram, pages, cfg, mode);
    (conv_secs, take_kernel_host_secs(), conv, rad)
}

fn rel_err(fast: f64, accurate: f64) -> f64 {
    if accurate == 0.0 {
        return 0.0;
    }
    (fast - accurate) / accurate
}

/// Runs the fast-mode bench: every kernel at a fixed envelope size plus the
/// Figure 3 database gate point, each timed on both tiers (minimum over
/// repeats) and cross-checked for functional identity.
///
/// # Panics
///
/// Panics if any checksum differs between tiers, or if the fast tier is
/// less than 5x faster than the accurate oracle on the conventional
/// component of the database gate point (see [`gate_pages`]).
pub fn bench(quick: bool) -> Vec<FastmodeRow> {
    let cfg = RadramConfig::reference();
    let repeats = if quick { 1 } else { 2 };
    let envelope_pages = if quick { 2.0 } else { 8.0 };
    let mut rows = Vec::new();
    let mut points: Vec<(App, f64)> = App::ALL.map(|app| (app, envelope_pages)).to_vec();
    points.push((App::Database, gate_pages(quick)));
    for (app, pages) in points {
        let (mut accurate_secs, mut accurate_conv_secs) = (f64::INFINITY, f64::INFINITY);
        let (mut fast_secs, mut fast_conv_secs) = (f64::INFINITY, f64::INFINITY);
        let (mut acc, mut fst) = (None, None);
        for _ in 0..repeats {
            let (conv_secs, rad_secs, conv, rad) = measure(app, pages, &cfg, ExecMode::Accurate);
            accurate_secs = accurate_secs.min(conv_secs + rad_secs);
            accurate_conv_secs = accurate_conv_secs.min(conv_secs);
            acc = Some((conv, rad));
            let (conv_secs, rad_secs, conv, rad) = measure(app, pages, &cfg, ExecMode::Fast);
            fast_secs = fast_secs.min(conv_secs + rad_secs);
            fast_conv_secs = fast_conv_secs.min(conv_secs);
            fst = Some((conv, rad));
        }
        let (a_conv, a_rad) = acc.expect("at least one repeat");
        let (f_conv, f_rad) = fst.expect("at least one repeat");
        let conv_check = check_pair(app, pages, &a_conv, &f_conv);
        let rad_check = check_pair(app, pages, &a_rad, &f_rad);
        let a_speedup = a_conv.kernel_cycles as f64 / a_rad.kernel_cycles.max(1) as f64;
        let f_speedup = f_conv.kernel_cycles as f64 / f_rad.kernel_cycles.max(1) as f64;
        rows.push(FastmodeRow {
            app,
            pages,
            accurate_secs,
            fast_secs,
            accurate_conv_secs,
            fast_conv_secs,
            conv_error: conv_check.relative_error(),
            rad_error: rad_check.relative_error(),
            speedup_error: rel_err(f_speedup, a_speedup),
        });
    }
    let gate = rows
        .iter()
        .find(|r| r.app == App::Database && r.pages == gate_pages(quick))
        .expect("gate row present");
    assert!(
        gate.oracle_speedup() >= 5.0,
        "fast tier must be >= 5x faster on the oracle-simulation (conventional) component of \
         the Figure 3 database point: got {:.2}x (accurate {:.4}s, fast {:.4}s)",
        gate.oracle_speedup(),
        gate.accurate_conv_secs,
        gate.fast_conv_secs,
    );
    rows
}

/// Renders the bench as the `BENCH_fastmode.json` payload (schema v1).
pub fn render_json(rows: &[FastmodeRow], quick: bool) -> String {
    let gate = rows.iter().find(|r| r.app == App::Database && r.pages == gate_pages(quick));
    let max_cycle_err =
        rows.iter().flat_map(|r| [r.conv_error.abs(), r.rad_error.abs()]).fold(0.0, f64::max);
    let max_speedup_err = rows.iter().map(|r| r.speedup_error.abs()).fold(0.0, f64::max);
    let mut s = String::from("{\n  \"schema\": 1,\n  \"bench\": \"fastmode\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"documented_cycle_error_envelope\": {CYCLE_ERROR_ENVELOPE},\n\
         \x20 \"max_cycle_error\": {max_cycle_err:.6},\n\
         \x20 \"max_speedup_error\": {max_speedup_err:.6},\n"
    ));
    if let Some(g) = gate {
        s.push_str(&format!(
            "  \"gate\": {{\"app\": \"database\", \"pages\": {}, \"oracle_wall_speedup\": {:.3}, \
             \"combined_wall_speedup\": {:.3}, \"required\": 5.0, \
             \"scored_on\": \"conventional component\"}},\n",
            g.pages,
            g.oracle_speedup(),
            g.wall_speedup()
        ));
    }
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"pages\": {}, \"accurate_secs\": {:.6}, \
             \"fast_secs\": {:.6}, \"accurate_conv_secs\": {:.6}, \"fast_conv_secs\": {:.6}, \
             \"wall_speedup\": {:.3}, \"oracle_wall_speedup\": {:.3}, \
             \"conv_cycle_error\": {:.6}, \"rad_cycle_error\": {:.6}, \
             \"speedup_error\": {:.6}}}{}\n",
            r.app.name(),
            r.pages,
            r.accurate_secs,
            r.fast_secs,
            r.accurate_conv_secs,
            r.fast_conv_secs,
            r.wall_speedup(),
            r.oracle_speedup(),
            r.conv_error,
            r.rad_error,
            r.speedup_error,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_check_accepts_identical_answers_and_scores_errors() {
        let cfg = RadramConfig::reference();
        let acc = App::Database.run_mode(SystemKind::Radram, 1.0, &cfg, ExecMode::Accurate);
        let fast = App::Database.run_mode(SystemKind::Radram, 1.0, &cfg, ExecMode::Fast);
        let check = check_pair(App::Database, 1.0, &acc, &fast);
        assert_eq!(check.accurate_cycles, acc.kernel_cycles);
        assert!(check.relative_error().abs() <= CYCLE_ERROR_ENVELOPE);
    }

    #[test]
    #[should_panic(expected = "diverged functionally")]
    fn cross_check_rejects_divergent_answers() {
        let cfg = RadramConfig::reference();
        let acc = App::Database.run_mode(SystemKind::Radram, 1.0, &cfg, ExecMode::Accurate);
        let mut fast = App::Database.run_mode(SystemKind::Radram, 1.0, &cfg, ExecMode::Fast);
        fast.checksum ^= 1;
        check_pair(App::Database, 1.0, &acc, &fast);
    }

    #[test]
    fn envelope_breach_detection_works() {
        let base = CrossCheck {
            app: App::Database,
            kind: SystemKind::Radram,
            pages: 1.0,
            accurate_cycles: 1000,
            fast_cycles: 1000,
        };
        let bad = CrossCheck { fast_cycles: 2000, ..base.clone() };
        let checks = vec![base, bad];
        assert_eq!(envelope_breaches(&checks).len(), 1);
        assert!((max_error(&checks) - 1.0).abs() < 1e-12);
    }
}
