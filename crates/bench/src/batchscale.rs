//! Batch-executor scaling harness (`experiments --bench-wallclock` /
//! `experiments database-xl`): the `database-xl` workload under three
//! executors.
//!
//! Where `wallclock` stresses *one* wide activation of compute-dense pages,
//! this harness stresses the opposite corner the ROADMAP names: millions of
//! resident records, thousands of pages, and an activation stream whose
//! batches are brief — so per-batch executor overhead (thread spawn churn,
//! job-claim serialization) dominates. Every point runs the same prepared
//! workload three ways:
//!
//! * **sequential** — the `AP_SEQUENTIAL=1` oracle;
//! * **spawn** — the legacy pre-pool executor (a fresh `std::thread::scope`
//!   plus a mutexed job queue per batch), kept selectable precisely so this
//!   bench can measure it in-process;
//! * **pooled** — the persistent page-worker pool with lock-free chunked
//!   claiming.
//!
//! All three must produce bit-identical `RunReport`s (clock, checksum,
//! stats) before any timing is reported, and the smallest point re-runs the
//! pooled executor under the dynamic race sanitizer and asserts it comes
//! back clean. Timings cover the kernel region only (host seconds drained
//! via [`radram::take_kernel_host_secs`]), excluding the untimed
//! 128 MiB-scale workload staging both paths share. Results land in
//! `BENCH_batch_scaling.json` with a pages axis and a threads axis.

use active_pages::parallel::{self, PoolMode};
use ap_apps::database::xl;
use ap_apps::{ExecMode, RunReport, SystemKind};
use radram::RadramConfig;

/// One measured configuration of the batch-scaling sweep.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Pages resident (records = pages × [`xl::RECORDS_PER_PAGE`]).
    pub pages: usize,
    /// Records resident at this point.
    pub records: usize,
    /// Queries issued (= activation batches of [`xl::TENANT_PAGES`] pages).
    pub queries: usize,
    /// Page-thread budget the parallel executors ran under.
    pub threads: usize,
    /// Kernel host seconds, sequential oracle.
    pub sequential_secs: f64,
    /// Kernel host seconds, legacy spawn-per-batch executor.
    pub spawn_secs: f64,
    /// Kernel host seconds, persistent pool executor.
    pub pooled_secs: f64,
}

impl BatchPoint {
    /// Wall-clock speedup of the pooled executor over the pre-pool (spawn)
    /// executor — the acceptance metric.
    pub fn speedup_vs_spawn(&self) -> f64 {
        self.spawn_secs / self.pooled_secs.max(1e-9)
    }

    /// Wall-clock speedup of the pooled executor over the sequential
    /// oracle (can dip below 1 on a single-core host; reported honestly).
    pub fn speedup_vs_sequential(&self) -> f64 {
        self.sequential_secs / self.pooled_secs.max(1e-9)
    }
}

/// The thread budget the sweep's pages axis runs at: every core the host
/// offers, floored at 4 so single-core CI still exercises a real pool.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get()).max(4)
}

/// Pages-axis sizes. The full sweep ends at the acceptance point: 2048
/// pages = 1,048,576 resident records.
pub fn page_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![64, 128]
    } else {
        vec![512, 1024, 2048]
    }
}

/// Threads-axis budgets, measured at the largest pages-axis size.
pub fn thread_axis(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 4]
    } else {
        vec![2, 4, 8]
    }
}

fn digest(r: &RunReport) -> (u64, u64, u64, u64, String) {
    (r.kernel_cycles, r.total_cycles, r.dispatch_cycles, r.checksum, format!("{:?}", r.stats))
}

/// Runs the prepared workload once under `mode` and returns the kernel
/// host seconds together with the report.
fn run_once(wl: &xl::Workload, cfg: &RadramConfig, mode: Option<PoolMode>) -> (f64, RunReport) {
    radram::set_force_sequential(mode.is_none());
    parallel::set_pool_mode(mode);
    let _ = radram::take_kernel_host_secs();
    let report = xl::run_prepared(SystemKind::Radram, wl, cfg, ExecMode::Accurate);
    let secs = radram::take_kernel_host_secs();
    radram::set_force_sequential(false);
    parallel::set_pool_mode(None);
    (secs, report)
}

/// Measures one `(pages, threads)` configuration: sequential oracle, then
/// the legacy spawn executor, then the pooled executor, asserting all three
/// reports bit-identical before timing is reported.
///
/// # Panics
///
/// Panics if any executor diverges from the sequential oracle, or if the
/// pooled run failed to reuse pool workers.
pub fn measure(wl: &xl::Workload, threads: usize) -> BatchPoint {
    // Interleaved best-of-N: the three executors are timed round-robin and
    // each keeps its fastest round, so slow drift on a shared host (CI
    // neighbours, background compilation) cannot bias one executor.
    const REPS: usize = 3;
    let cfg = RadramConfig::reference();
    parallel::set_thread_budget(threads);
    let reuses_before = parallel::pool_stats().reuses;
    let (mut sequential_secs, mut spawn_secs, mut pooled_secs) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut oracle = None;
    for _ in 0..REPS {
        let (s, seq) = run_once(wl, &cfg, None);
        sequential_secs = sequential_secs.min(s);
        let (s, spawn) = run_once(wl, &cfg, Some(PoolMode::Spawn));
        spawn_secs = spawn_secs.min(s);
        let (s, pooled) = run_once(wl, &cfg, Some(PoolMode::Pooled));
        pooled_secs = pooled_secs.min(s);
        let d = digest(&seq);
        assert_eq!(
            d,
            digest(&spawn),
            "spawn executor diverged from the sequential oracle at {} pages",
            wl.pages
        );
        assert_eq!(
            d,
            digest(&pooled),
            "pooled executor diverged from the sequential oracle at {} pages",
            wl.pages
        );
        if let Some(first) = &oracle {
            assert_eq!(first, &d, "a repeat run diverged at {} pages", wl.pages);
        } else {
            oracle = Some(d);
        }
    }
    // On a single-core host the pooled executor runs inline (the budget is
    // a cap, not a target), so worker reuse is only observable with >= 2
    // cores; CI asserts it there.
    if parallel::effective_threads(threads) >= 2 && wl.queries.len() >= 2 {
        assert!(
            parallel::pool_stats().reuses > reuses_before,
            "pooled run should have reused persistent workers"
        );
    }
    BatchPoint {
        pages: wl.pages,
        records: wl.pages * xl::RECORDS_PER_PAGE,
        queries: wl.queries.len(),
        threads,
        sequential_secs,
        spawn_secs,
        pooled_secs,
    }
}

/// Re-runs the pooled executor under the dynamic race sanitizer and
/// asserts the run comes back clean and bit-identical.
fn sanitize_check(wl: &xl::Workload) {
    let cfg = RadramConfig::reference();
    let (_, clean) = run_once(wl, &cfg, Some(PoolMode::Pooled));
    radram::set_force_sanitize(true);
    let (_, audited) = run_once(wl, &cfg, Some(PoolMode::Pooled));
    radram::set_force_sanitize(false);
    assert_eq!(audited.stats.race_errors, 0, "sanitizer found races in database-xl");
    assert_eq!(audited.stats.race_warnings, 0, "sanitizer warned on database-xl");
    assert_eq!(clean.checksum, audited.checksum, "sanitized run changed the answer");
}

/// Runs the full sweep: the pages axis at [`default_threads`], then the
/// threads axis at the largest page count, plus any explicit override
/// point (`--pages` / `--threads`). The sanitizer cross-check runs on the
/// smallest workload.
///
/// # Panics
///
/// Panics on any executor divergence or sanitizer finding.
pub fn run(
    quick: bool,
    pages_override: Option<usize>,
    threads_override: Option<usize>,
) -> Vec<BatchPoint> {
    let mut points = Vec::new();
    let base_threads = threads_override.unwrap_or_else(default_threads);
    let mut sizes = page_sizes(quick);
    if let Some(p) = pages_override {
        let p = xl::shard_pages(p as f64);
        if !sizes.contains(&p) {
            sizes.push(p);
        }
    }
    sizes.sort_unstable();
    for (i, &pages) in sizes.iter().enumerate() {
        let wl = xl::Workload::new(pages, xl::queries_for(pages));
        if i == 0 {
            sanitize_check(&wl);
        }
        points.push(measure(&wl, base_threads));
        if Some(pages) == sizes.last().copied() {
            let wl_threads = thread_axis(quick);
            for t in wl_threads {
                if t != base_threads {
                    points.push(measure(&wl, t));
                }
            }
        }
    }
    points
}

/// Renders the sweep as the `BENCH_batch_scaling.json` payload.
pub fn render_json(points: &[BatchPoint]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stats = parallel::pool_stats();
    let mut s = String::from("{\n  \"schema\": 1,\n  \"bench\": \"batch_scaling\",\n");
    s.push_str(
        "  \"workload\": \"database-xl: multi-tenant shard queries, one 8-page \
         activation batch per query\",\n",
    );
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!("  \"default_threads\": {},\n", default_threads()));
    s.push_str(&format!(
        "  \"pool\": {{\"batches\": {}, \"reuses\": {}, \"threads_spawned\": {}}},\n",
        stats.batches, stats.reuses, stats.threads_spawned
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pages\": {}, \"records\": {}, \"queries\": {}, \"threads\": {}, \
             \"effective_threads\": {}, \
             \"sequential_secs\": {:.6}, \"spawn_secs\": {:.6}, \"pooled_secs\": {:.6}, \
             \"speedup_vs_spawn\": {:.3}, \"speedup_vs_sequential\": {:.3}}}{}\n",
            p.pages,
            p.records,
            p.queries,
            p.threads,
            parallel::effective_threads(p.threads),
            p.sequential_secs,
            p.spawn_secs,
            p.pooled_secs,
            p.speedup_vs_spawn(),
            p.speedup_vs_sequential(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_deterministic_and_renders() {
        let points = run(true, None, None);
        // Pages axis plus the threads axis at the largest size (the default
        // budget point is not duplicated).
        assert!(points.len() >= page_sizes(true).len());
        let json = render_json(&points);
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"speedup_vs_spawn\""), "{json}");
        assert!(json.contains("\"pool\""), "{json}");
        for p in &points {
            assert!(p.sequential_secs > 0.0 && p.spawn_secs > 0.0 && p.pooled_secs > 0.0);
            assert_eq!(p.records, p.pages * xl::RECORDS_PER_PAGE);
        }
    }

    #[test]
    fn override_point_is_added_and_sharded() {
        let points = run(true, Some(100), Some(3));
        // 100 rounds up to 104 (13 shards), joining the quick sizes.
        assert!(points.iter().any(|p| p.pages == 104 && p.threads == 3), "{points:?}");
    }
}
