//! `aplint`: static verification of the Active Pages artifact corpus.
//!
//! Lints the Table 3 circuits, the Section 10 extension circuits and the
//! six SS-lite workload kernels, printing one report per subject. Exits
//! nonzero when any subject carries an Error-severity diagnostic (or, under
//! `--deny-warnings`, any Warning), so CI can gate on a clean corpus.
//!
//! ```text
//! aplint [--all | NAME...] [--race] [--deny-warnings] [--format text|json]
//! ```
//!
//! With no names (or `--all`) the whole corpus is linted; otherwise only
//! subjects whose name matches one of the given names. `--race` runs the
//! static race/footprint analysis (RC201/RC202/RC203) over the kernels
//! instead of the structural lint passes, reporting each kernel's proven
//! byte footprint.

use ap_bench::lint_corpus;
use ap_lint::footprint::StaticFootprint;

fn usage() -> ! {
    eprintln!("usage: aplint [--all | NAME...] [--race] [--deny-warnings] [--format text|json]");
    eprintln!("subjects:");
    for r in lint_corpus::all_reports() {
        eprintln!("  {}", r.subject());
    }
    std::process::exit(2);
}

/// One line summarizing what the footprint analysis proved for a kernel.
fn footprint_summary(fp: &StaticFootprint) -> String {
    match fp {
        StaticFootprint::Known(fp) => {
            let page = active_pages::PAGE_SIZE as u64;
            let local = fp.reads.runs().iter().chain(fp.writes.runs()).all(|&(_, end)| end <= page);
            format!(
                "footprint: known, {} read bytes / {} write bytes, {}",
                fp.reads.bytes(),
                fp.writes.bytes(),
                if local { "page-local" } else { "ESCAPES PAGE" }
            )
        }
        StaticFootprint::Unknown => "footprint: unknown (runtime fallbacks kept)".to_string(),
    }
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut json = false;
    let mut race = false;
    let mut deny_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {}
            "--race" => race = true,
            "--deny-warnings" => deny_warnings = true,
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => names.push(name.to_string()),
            _ => usage(),
        }
    }

    let reports: Vec<_> = if race {
        lint_corpus::race_reports()
            .into_iter()
            .filter(|(r, _)| names.is_empty() || names.iter().any(|n| n == r.subject()))
            .map(|(r, fp)| (r, Some(fp)))
            .collect()
    } else {
        lint_corpus::all_reports()
            .into_iter()
            .filter(|r| names.is_empty() || names.iter().any(|n| n == r.subject()))
            .map(|r| (r, None))
            .collect()
    };
    if reports.is_empty() {
        eprintln!("aplint: no subject matches {names:?}");
        usage();
    }

    let mut errors = 0u32;
    let mut warnings = 0u32;
    for (r, fp) in &reports {
        errors += r.errors();
        warnings += r.warnings();
        if json {
            println!("{}", r.render_json());
        } else {
            println!("{}", r.render_text());
            if let Some(fp) = fp {
                println!("  {}", footprint_summary(fp));
            }
        }
    }
    if !json {
        println!("aplint: {} subjects, {errors} errors, {warnings} warnings", reports.len());
    }
    let fail = errors > 0 || (deny_warnings && warnings > 0);
    std::process::exit(if fail { 1 } else { 0 });
}
