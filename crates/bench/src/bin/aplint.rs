//! `aplint`: static verification of the Active Pages artifact corpus.
//!
//! Lints the Table 3 circuits, the Section 10 extension circuits and the
//! six SS-lite workload kernels, printing one report per subject. Exits
//! nonzero when any subject carries an Error-severity diagnostic, so CI
//! can gate on a clean corpus.
//!
//! ```text
//! aplint [--all | NAME...] [--format text|json]
//! ```
//!
//! With no names (or `--all`) the whole corpus is linted; otherwise only
//! subjects whose name matches one of the given names.

use ap_bench::lint_corpus;

fn usage() -> ! {
    eprintln!("usage: aplint [--all | NAME...] [--format text|json]");
    eprintln!("subjects:");
    for r in lint_corpus::all_reports() {
        eprintln!("  {}", r.subject());
    }
    std::process::exit(2);
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {}
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => names.push(name.to_string()),
            _ => usage(),
        }
    }

    let reports: Vec<_> = lint_corpus::all_reports()
        .into_iter()
        .filter(|r| names.is_empty() || names.iter().any(|n| n == r.subject()))
        .collect();
    if reports.is_empty() {
        eprintln!("aplint: no subject matches {names:?}");
        usage();
    }

    let mut errors = 0u32;
    let mut warnings = 0u32;
    for r in &reports {
        errors += r.errors();
        warnings += r.warnings();
        if json {
            println!("{}", r.render_json());
        } else {
            println!("{}", r.render_text());
        }
    }
    if !json {
        println!("aplint: {} subjects, {errors} errors, {warnings} warnings", reports.len());
    }
    std::process::exit(if errors > 0 { 1 } else { 0 });
}
