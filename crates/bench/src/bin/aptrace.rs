//! Summarizes Chrome trace files exported by the `experiments --trace` run.
//!
//! Usage: `aptrace [--check[=SUBSYSTEMS]] FILE...`
//!
//! Default mode renders, per file, a text flame summary (which event kinds
//! own the cycles) and the traced `T_A`/`T_P`/`T_C` phase totals. With
//! `--check`, each file is instead validated: it must parse as trace-event
//! JSON and — when a subsystem list is given — contain at least one span or
//! instant from every listed subsystem. `--check` is the CI smoke gate:
//! exit status is non-zero as soon as any file fails.

use ap_trace::chrome::{self, ParsedEvent};
use ap_trace::phases::PhaseTotals;
use ap_trace::{flame, Subsystem};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: aptrace [--check[=SUBSYSTEMS]] FILE...\n\
     \n\
     Summarizes Chrome trace-event JSON files written by `experiments --trace`\n\
     (flame summary plus traced T_A/T_P/T_C phase totals).\n\
     \n\
     options:\n\
     \x20 --check[=SUBS]  validate instead of summarize: each FILE must parse\n\
     \x20                 and contain >=1 event from every listed subsystem\n\
     \x20                 (comma-separated: cpu,mem,radram,risc,engine)"
}

fn main() -> ExitCode {
    let mut check: Option<Vec<Subsystem>> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--help" || arg == "-h" {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        } else if arg == "--check" {
            check = Some(Vec::new());
        } else if let Some(list) = arg.strip_prefix("--check=") {
            let mut subs = Vec::new();
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match Subsystem::by_name(name) {
                    Some(s) => subs.push(s),
                    None => {
                        eprintln!("error: unknown subsystem {name:?} in --check");
                        return ExitCode::from(2);
                    }
                }
            }
            check = Some(subs);
        } else if arg.starts_with('-') {
            eprintln!("error: unknown option {arg:?}\n\n{}", usage());
            return ExitCode::from(2);
        } else {
            files.push(PathBuf::from(arg));
        }
    }
    if files.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    let mut failed = false;
    for file in &files {
        let outcome = match &check {
            Some(required) => check_file(file, required),
            None => summarize_file(file),
        };
        if let Err(msg) = outcome {
            eprintln!("aptrace: {}: {msg}", file.display());
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load(file: &PathBuf) -> Result<Vec<ParsedEvent>, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read: {e}"))?;
    chrome::parse(&text)
}

/// True for events that represent work (spans and instants), as opposed to
/// metadata and counter records.
fn is_work(e: &ParsedEvent) -> bool {
    e.ph == 'X' || e.ph == 'i'
}

fn summarize_file(file: &PathBuf) -> Result<(), String> {
    let events = load(file)?;
    let rows = flame::aggregate(
        events.iter().filter(|e| is_work(e)).map(|e| (e.cat.as_str(), e.name.as_str(), e.dur)),
    );
    print!("{}", flame::render(&file.display().to_string(), &rows));

    // Per-page flame rows: events routed through the per-page trace rings
    // export with `tid = PAGE_TID_BASE + page`. Summarize the busiest pages
    // so thousand-page runs stay readable.
    let mut per_page: BTreeMap<u64, Vec<&ParsedEvent>> = BTreeMap::new();
    for e in events.iter().filter(|e| is_work(e) && e.tid >= chrome::PAGE_TID_BASE) {
        per_page.entry(e.tid - chrome::PAGE_TID_BASE).or_default().push(e);
    }
    if !per_page.is_empty() {
        let mut pages: Vec<(u64, u64, Vec<&ParsedEvent>)> = per_page
            .into_iter()
            .map(|(page, evs)| (page, evs.iter().map(|e| e.dur).sum(), evs))
            .collect();
        pages.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        println!("  per-page rows ({} pages; busiest first):", pages.len());
        for (page, cycles, evs) in pages.iter().take(8) {
            let rows =
                flame::aggregate(evs.iter().map(|e| (e.cat.as_str(), e.name.as_str(), e.dur)));
            let kinds: Vec<String> =
                rows.iter().take(3).map(|r| format!("{} {}", r.kind, r.total_dur)).collect();
            println!(
                "    page {page:>4}: {cycles:>10} cycles, {:>4} events  [{}]",
                evs.len(),
                kinds.join(", ")
            );
        }
        if pages.len() > 8 {
            println!("    ... {} more pages", pages.len() - 8);
        }
    }

    let p = PhaseTotals::of_chrome(&events);
    println!(
        "  phases: kernel={} dispatch={} page_run={} stall={} activations={}",
        p.kernel_cycles, p.dispatch_cycles, p.page_run_cycles, p.stall_cycles, p.activations
    );
    if p.activations > 0 {
        println!(
            "  per-activation: T_A={:.1} T_P={:.1} T_C={:.1} cycles",
            p.t_a(),
            p.t_p(),
            p.t_c()
        );
    }
    println!();
    Ok(())
}

fn check_file(file: &PathBuf, required: &[Subsystem]) -> Result<(), String> {
    let events = load(file)?;
    let work: Vec<&ParsedEvent> = events.iter().filter(|e| is_work(e)).collect();
    if work.is_empty() {
        return Err("no span or instant events".into());
    }
    for sub in required {
        if !work.iter().any(|e| e.cat == sub.name()) {
            let seen: std::collections::BTreeSet<&str> =
                work.iter().map(|e| e.cat.as_str()).collect();
            return Err(format!(
                "no events from subsystem {:?} (subsystems present: {})",
                sub.name(),
                seen.into_iter().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    println!("ok: {} ({} events)", file.display(), work.len());
    Ok(())
}
