//! Runs every experiment and writes CSV results.
//!
//! Usage: `experiments [TARGET] [--jobs N] [--no-cache] [--manifest PATH]
//! [--trace[=DIR]] [--trace-filter LIST]` (default target `all`).
//! Simulation points run in parallel on the `ap-engine` worker pool with
//! disk-cached results; set `AP_QUICK=1` for reduced sweeps. `--trace`
//! exports a Chrome-trace timeline per fresh job (summarize with
//! `aptrace`). Unknown targets or options print the usage and exit
//! non-zero.

use ap_bench::{cli, experiments, quick_mode, render, write_result_file};
use std::path::Path;

fn main() {
    let cli = match cli::parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", cli::usage());
            std::process::exit(if msg == "help" { 0 } else { 2 });
        }
    };
    let quick = quick_mode();

    if cli.bench_wallclock {
        println!("Wallclock page-scaling bench (sequential oracle vs. parallel executor)");
        let points = ap_bench::wallclock::run(quick);
        for p in &points {
            println!(
                "  {:>5} pages: sequential {:>8.3}s  parallel {:>8.3}s  speedup {:>5.2}x",
                p.pages,
                p.sequential_secs,
                p.parallel_secs,
                p.speedup()
            );
        }
        report_written(write_result_file(
            "BENCH_page_scaling.json",
            &ap_bench::wallclock::render_json(&points),
        ));
        return;
    }

    // Fresh manifest per invocation: the file describes this run only.
    let manifest_path = cli.manifest_path();
    if let Some(parent) = manifest_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&manifest_path, "");
    let runner = cli.runner();

    if cli.wants("table1") {
        render::print_table1(&experiments::table1());
        println!();
    }
    if cli.wants("table2") {
        render::print_table2();
        println!();
    }
    if cli.wants("table3") {
        render::print_table3(&experiments::table3());
        println!();
    }
    if cli.wants("fig1") {
        render::print_fig1(&experiments::fig1());
        println!();
    }
    if cli.wants("fig3") || cli.wants("fig4") {
        let data = experiments::fig3_fig4(&runner, quick);
        println!("Figure 3: RADram speedup as problem size varies");
        for (app, points) in &data {
            render::print_sweep(*app, points);
        }
        println!();
        println!("Figure 4: percent cycles the processor is stalled on RADram");
        for (app, points) in &data {
            print!("{:<15}", app.name());
            for p in points {
                print!(" {:>6.2}:{:>5.1}%", p.pages, p.non_overlap_percent());
            }
            println!();
        }
        report_written(write_result_file("fig3_fig4.csv", &render::sweep_csv(&data)));
        println!();
    }
    if cli.wants("fig5") {
        let rows = experiments::fig5(&runner, quick);
        render::print_fig5(&rows);
        report_written(write_result_file("fig5.csv", &render::fig5_csv(&rows)));
        let l2 = experiments::fig5_l2(&runner, quick);
        println!("Companion sweep: execution time vs. L2 size (KB)");
        render::print_fig5(&l2);
        report_written(write_result_file("fig5_l2.csv", &render::fig5_csv(&l2)));
        println!();
    }
    if cli.wants("fig8") {
        let rows = experiments::fig8(&runner, quick);
        render::print_sensitivity("Figure 8: speedup vs. cache-miss latency", "ns", &rows);
        report_written(write_result_file(
            "fig8.csv",
            &render::sensitivity_csv("latency_ns", &rows),
        ));
        println!();
    }
    if cli.wants("fig9") {
        let rows = experiments::fig9(&runner, quick);
        render::print_sensitivity("Figure 9: speedup vs. logic-clock divisor", "div", &rows);
        report_written(write_result_file("fig9.csv", &render::sensitivity_csv("divisor", &rows)));
        println!();
    }
    if cli.wants("table4") {
        let rows = experiments::table4(&runner, quick);
        render::print_table4(&rows);
        report_written(write_result_file("table4.csv", &render::table4_csv(&rows)));
        println!();
    }

    if let Ok(summary) = ap_engine::manifest::summarize(&manifest_path) {
        if summary.total > 0 {
            println!(
                "engine: {} jobs ({} cached, {} computed, {} failed) on {} workers; \
                 manifest: {}",
                summary.total,
                summary.cache_hits,
                summary.cache_misses - summary.panicked - summary.timed_out,
                summary.panicked + summary.timed_out,
                runner.engine().workers(),
                manifest_path.display()
            );
            if let Some(dir) = cli.trace_dir() {
                println!(
                    "traces: {} job timeline(s) under {} (summarize with `aptrace <file>`)",
                    summary.traced,
                    dir.display()
                );
            }
        }
    }
}

fn report_written(path: Option<std::path::PathBuf>) {
    if let Some(path) = path {
        println!("wrote {}", display_compact(&path));
    }
}

/// Shortens `.../crates/bench/../../results/x.csv` style paths for display.
fn display_compact(path: &Path) -> String {
    match path.canonicalize() {
        Ok(p) => p.display().to_string(),
        Err(_) => path.display().to_string(),
    }
}
