//! Runs every experiment and writes CSV results.
//!
//! Usage: `experiments [table1|table2|table3|table4|fig1|fig3|fig4|fig5|fig8|fig9|all]`
//! (default `all`). Set `AP_QUICK=1` for reduced sweeps.

use ap_bench::{experiments, quick_mode, render, write_result_file};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let quick = quick_mode();
    let want = |name: &str| which == "all" || which == name;

    if want("table1") {
        render::print_table1(&experiments::table1());
        println!();
    }
    if want("table2") {
        render::print_table2();
        println!();
    }
    if want("table3") {
        render::print_table3(&experiments::table3());
        println!();
    }
    if want("fig1") {
        render::print_fig1(&experiments::fig1());
        println!();
    }
    if want("fig3") || want("fig4") {
        let data = experiments::fig3_fig4(quick);
        println!("Figure 3: RADram speedup as problem size varies");
        for (app, points) in &data {
            render::print_sweep(*app, points);
        }
        println!();
        println!("Figure 4: percent cycles the processor is stalled on RADram");
        for (app, points) in &data {
            print!("{:<15}", app.name());
            for p in points {
                print!(" {:>6.2}:{:>5.1}%", p.pages, p.non_overlap_percent());
            }
            println!();
        }
        write_result_file("fig3_fig4.csv", &render::sweep_csv(&data));
        println!();
    }
    if want("fig5") {
        let rows = experiments::fig5(quick);
        render::print_fig5(&rows);
        write_result_file("fig5.csv", &render::fig5_csv(&rows));
        let l2 = experiments::fig5_l2(quick);
        println!("Companion sweep: execution time vs. L2 size (KB)");
        render::print_fig5(&l2);
        write_result_file("fig5_l2.csv", &render::fig5_csv(&l2));
        println!();
    }
    if want("fig8") {
        let rows = experiments::fig8(quick);
        render::print_sensitivity("Figure 8: speedup vs. cache-miss latency", "ns", &rows);
        write_result_file("fig8.csv", &render::sensitivity_csv("latency_ns", &rows));
        println!();
    }
    if want("fig9") {
        let rows = experiments::fig9(quick);
        render::print_sensitivity("Figure 9: speedup vs. logic-clock divisor", "div", &rows);
        write_result_file("fig9.csv", &render::sensitivity_csv("divisor", &rows));
        println!();
    }
    if want("table4") {
        let rows = experiments::table4(quick);
        render::print_table4(&rows);
        write_result_file("table4.csv", &render::table4_csv(&rows));
    }
}
