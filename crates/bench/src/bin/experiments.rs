//! Runs every experiment and writes CSV results.
//!
//! Usage: `experiments [TARGET] [--jobs N] [--no-cache] [--manifest PATH]
//! [--trace[=DIR]] [--trace-filter LIST]` (default target `all`).
//! Simulation points run in parallel on the `ap-engine` worker pool with
//! disk-cached results; set `AP_QUICK=1` for reduced sweeps. `--trace`
//! exports a Chrome-trace timeline per fresh job (summarize with
//! `aptrace`). Unknown targets or options print the usage and exit
//! non-zero.

use ap_bench::{cli, experiments, render, write_result_file};
use std::path::Path;

fn main() {
    let cli = match cli::parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", cli::usage());
            std::process::exit(if msg == "help" { 0 } else { 2 });
        }
    };
    let quick = cli.is_quick();

    if cli.bench_wallclock {
        println!("Wallclock page-scaling bench (sequential oracle vs. parallel executor)");
        let points = ap_bench::wallclock::run(quick);
        for p in &points {
            println!(
                "  {:>5} pages: sequential {:>8.3}s  parallel {:>8.3}s  speedup {:>5.2}x",
                p.pages,
                p.sequential_secs,
                p.parallel_secs,
                p.speedup()
            );
        }
        report_written(write_result_file(
            "BENCH_page_scaling.json",
            &ap_bench::wallclock::render_json(&points),
        ));
        println!("Fast-tier bench (accurate oracle vs. counted fast mode)");
        let rows = ap_bench::fastmode::bench(quick);
        for r in &rows {
            println!(
                "  {:<14} {:>6.2} pages: accurate {:>8.4}s  fast {:>8.4}s  speedup {:>6.2}x  \
                 (oracle {:>6.2}x)  cycle err conv {:>+7.3} rad {:>+7.3}",
                r.app.name(),
                r.pages,
                r.accurate_secs,
                r.fast_secs,
                r.wall_speedup(),
                r.oracle_speedup(),
                r.conv_error,
                r.rad_error,
            );
        }
        report_written(write_result_file(
            "BENCH_fastmode.json",
            &ap_bench::fastmode::render_json(&rows, quick),
        ));
        println!(
            "Batch-scaling bench (database-xl: sequential oracle vs spawn vs pooled executor)"
        );
        let points = ap_bench::batchscale::run(quick, cli.pages, cli.threads);
        for p in &points {
            println!(
                "  {:>5} pages ({:>8} records, {:>3} queries) @ {:>2} threads: \
                 seq {:>7.3}s  spawn {:>7.3}s  pooled {:>7.3}s  \
                 vs-spawn {:>5.2}x  vs-seq {:>5.2}x",
                p.pages,
                p.records,
                p.queries,
                p.threads,
                p.sequential_secs,
                p.spawn_secs,
                p.pooled_secs,
                p.speedup_vs_spawn(),
                p.speedup_vs_sequential(),
            );
        }
        report_written(write_result_file(
            "BENCH_batch_scaling.json",
            &ap_bench::batchscale::render_json(&points),
        ));
        return;
    }

    // Fresh manifest per invocation: the file describes this run only.
    let manifest_path = cli.manifest_path();
    if let Some(parent) = manifest_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&manifest_path, "");
    let runner = cli.runner();

    if cli.wants("table1") {
        render::print_table1(&experiments::table1());
        println!();
    }
    if cli.wants("table2") {
        render::print_table2();
        println!();
    }
    if cli.wants("table3") {
        render::print_table3(&experiments::table3());
        println!();
    }
    if cli.wants("fig1") {
        render::print_fig1(&experiments::fig1());
        println!();
    }
    if cli.wants("fig3") || cli.wants("fig4") {
        let (mode, cross) = cli.mode_or(ap_bench::ExecMode::Accurate);
        let data = experiments::fig3_fig4_mode(&runner, quick, mode);
        println!("Figure 3: RADram speedup as problem size varies ({mode} tier)");
        for (app, points) in &data {
            render::print_sweep(*app, points);
        }
        println!();
        println!("Figure 4: percent cycles the processor is stalled on RADram");
        for (app, points) in &data {
            print!("{:<15}", app.name());
            for p in points {
                print!(" {:>6.2}:{:>5.1}%", p.pages, p.non_overlap_percent());
            }
            println!();
        }
        report_written(write_result_file("fig3_fig4.csv", &render::sweep_csv(&data)));
        if cross {
            let accurate =
                experiments::fig3_fig4_mode(&runner, quick, ap_bench::ExecMode::Accurate);
            let checks = ap_bench::fastmode::cross_check(&accurate, &data);
            let max = ap_bench::fastmode::max_error(&checks);
            let breaches = ap_bench::fastmode::envelope_breaches(&checks);
            println!(
                "cross-check: {} runs, max cycle error {:.3} (envelope {})",
                checks.len(),
                max,
                ap_bench::fastmode::CYCLE_ERROR_ENVELOPE
            );
            if !breaches.is_empty() {
                for b in &breaches {
                    eprintln!(
                        "error: {} {} at {} pages: cycle error {:+.3} exceeds the envelope",
                        b.app.name(),
                        b.kind,
                        b.pages,
                        b.relative_error()
                    );
                }
                std::process::exit(1);
            }
        }
        println!();
    }
    if cli.wants("dse") || cli.wants("dse-smoke") {
        if cli.wants("dse-smoke") {
            eprintln!("warning: `dse-smoke` is deprecated; it now forwards to the `dse` sweep");
        }
        let run = ap_bench::dse::run(&runner, quick, cli.mode);
        let r = &run.report;
        println!("Design-space sweep ({}, {} mode)", r.grid, r.mode);
        print!("{}", r.table());
        println!(
            "sweep: {:.1}s wall, {} jobs ({} cached), rungs {:?}",
            run.wall_secs, run.total_jobs, run.cache_hits, r.rungs
        );
        if r.promoted > 0 {
            println!(
                "cross-check: {} promoted points, max cycle error {:.3} (envelope {})",
                r.promoted,
                r.max_promoted_error,
                ap_bench::fastmode::CYCLE_ERROR_ENVELOPE
            );
        }
        report_written(write_result_file("BENCH_dse.json", &run.render_json()));
        report_written(write_result_file("BENCH_dse_front.json", &r.front_json()));
        if r.front.is_empty() {
            eprintln!("error: the sweep produced an empty Pareto front");
            std::process::exit(1);
        }
        if r.max_promoted_error > ap_bench::fastmode::CYCLE_ERROR_ENVELOPE {
            eprintln!(
                "error: promoted-point cycle error {:.3} exceeds the envelope",
                r.max_promoted_error
            );
            std::process::exit(1);
        }
        println!();
    }
    if cli.wants("fig5") {
        let rows = experiments::fig5(&runner, quick);
        render::print_fig5(&rows);
        report_written(write_result_file("fig5.csv", &render::fig5_csv(&rows)));
        let l2 = experiments::fig5_l2(&runner, quick);
        println!("Companion sweep: execution time vs. L2 size (KB)");
        render::print_fig5(&l2);
        report_written(write_result_file("fig5_l2.csv", &render::fig5_csv(&l2)));
        println!();
    }
    if cli.wants("fig8") {
        let rows = experiments::fig8(&runner, quick);
        render::print_sensitivity("Figure 8: speedup vs. cache-miss latency", "ns", &rows);
        report_written(write_result_file(
            "fig8.csv",
            &render::sensitivity_csv("latency_ns", &rows),
        ));
        println!();
    }
    if cli.wants("fig9") {
        let rows = experiments::fig9(&runner, quick);
        render::print_sensitivity("Figure 9: speedup vs. logic-clock divisor", "div", &rows);
        report_written(write_result_file("fig9.csv", &render::sensitivity_csv("divisor", &rows)));
        println!();
    }
    if cli.wants("table4") {
        let rows = experiments::table4(&runner, quick);
        render::print_table4(&rows);
        report_written(write_result_file("table4.csv", &render::table4_csv(&rows)));
        println!();
    }
    if cli.wants("database-xl") {
        use ap_apps::{database::xl, App, SystemKind};
        use ap_bench::runner::RunSpec;
        let (mode, _) = cli.mode_or(ap_bench::ExecMode::Accurate);
        let pages = if quick { 64.0 } else { 2048.0 };
        let cfg = radram::RadramConfig::reference();
        let specs = vec![
            RunSpec::new(App::DatabaseXl, SystemKind::Conventional, pages, cfg.clone())
                .with_mode(mode),
            RunSpec::new(App::DatabaseXl, SystemKind::Radram, pages, cfg).with_mode(mode),
        ];
        let mut results = runner.run(specs).into_iter();
        let conv = results.next().unwrap().expect("conventional database-xl run failed");
        let rad = results.next().unwrap().expect("radram database-xl run failed");
        println!(
            "database-xl ({mode} tier): {} pages, {} records resident",
            conv.pages,
            conv.pages as usize * xl::RECORDS_PER_PAGE
        );
        println!(
            "  conventional {:>14} cycles   radram {:>14} cycles   speedup {:>6.2}x   \
             activations {}",
            conv.kernel_cycles,
            rad.kernel_cycles,
            ap_apps::speedup(&conv, &rad),
            rad.stats.activations
        );
        println!();
    }

    if let Ok(summary) = ap_engine::manifest::summarize(&manifest_path) {
        if summary.total > 0 {
            println!(
                "engine: {} jobs ({} cached, {} computed, {} failed) on {} workers; \
                 manifest: {}",
                summary.total,
                summary.cache_hits,
                summary.cache_misses - summary.panicked - summary.timed_out,
                summary.panicked + summary.timed_out,
                runner.engine().workers(),
                manifest_path.display()
            );
            if let Some(dir) = cli.trace_dir() {
                println!(
                    "traces: {} job timeline(s) under {} (summarize with `aptrace <file>`)",
                    summary.traced,
                    dir.display()
                );
            }
        }
    }
}

fn report_written(path: Option<std::path::PathBuf>) {
    if let Some(path) = path {
        println!("wrote {}", display_compact(&path));
    }
}

/// Shortens `.../crates/bench/../../results/x.csv` style paths for display.
fn display_compact(path: &Path) -> String {
    match path.canonicalize() {
        Ok(p) => p.display().to_string(),
        Err(_) => path.display().to_string(),
    }
}
