//! Generators for every table and figure of the evaluation.

use crate::runner::{RunSpec, Runner};
use crate::sweep::{run_sweeps, run_sweeps_mode, SweepPoint};
use ap_analytic::{calibrate, pearson, Calibration, Fig1Point};
use ap_apps::{speedup, App, ExecMode, SystemKind};
use ap_synth::report::Table3Row;
use radram::RadramConfig;

/// Problem size (pages) used by the fixed-size sensitivity studies
/// (Figures 5, 8 and 9).
pub const SENSITIVITY_PAGES: f64 = 8.0;

/// Figure 1: the idealized scaling-region curve, derived from the database
/// kernel's calibrated constants.
pub fn fig1() -> Vec<Fig1Point> {
    let cfg = RadramConfig::reference();
    let rad = App::Database.run(SystemKind::Radram, 4.0, &cfg);
    let conv = App::Database.run(SystemKind::Conventional, 4.0, &cfg);
    let cal = calibrate(&rad);
    let conv_per_page = conv.kernel_cycles as f64 / 4.0;
    let sizes = [1, 2, 4, 8, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20];
    ap_analytic::fig1_series(&cal.model(), conv_per_page, &sizes)
}

/// Table 1: the RADram reference parameters and their studied variations.
pub fn table1() -> Vec<(&'static str, String, &'static str)> {
    let cfg = RadramConfig::reference();
    vec![
        ("CPU Clock", "1 GHz".to_string(), "—"),
        ("L1 I-Cache", format!("{}K", cfg.cpu.hierarchy.l1i.size / 1024), "—"),
        ("L1 D-Cache", format!("{}K", cfg.cpu.hierarchy.l1d.size / 1024), "32K-256K"),
        ("L2 Cache", format!("{}M", cfg.cpu.hierarchy.l2.size / (1024 * 1024)), "256K-4M"),
        ("Reconf Logic", format!("{:.0} MHz", cfg.logic_mhz()), "10-500 MHz"),
        ("Cache Miss", format!("{} ns", cfg.cpu.hierarchy.dram.latency), "0-600 ns"),
    ]
}

/// Table 3: synthesized circuits (LEs, clock, configuration size).
pub fn table3() -> Vec<Table3Row> {
    ap_synth::report::table3()
}

/// Figures 3 and 4: the speedup and non-overlap sweeps for every kernel,
/// submitted to the engine as one batch.
pub fn fig3_fig4(runner: &Runner, quick: bool) -> Vec<(App, Vec<SweepPoint>)> {
    fig3_fig4_mode(runner, quick, ExecMode::Accurate)
}

/// [`fig3_fig4`] on the chosen execution tier (`--mode fast` trades exact
/// cycle counts for wall-clock; see DESIGN.md §13).
pub fn fig3_fig4_mode(runner: &Runner, quick: bool, mode: ExecMode) -> Vec<(App, Vec<SweepPoint>)> {
    run_sweeps_mode(runner, &App::ALL, &RadramConfig::reference(), quick, mode)
}

/// One Figure 5 series: execution time vs. L1 data-cache size.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Series label ("database-conv", "median-total-radram", ...).
    pub label: String,
    /// `(L1D KB, kernel or total cycles)` points.
    pub points: Vec<(usize, u64)>,
}

/// Figure 5: conventional and RADram execution time as the L1 data cache
/// varies from 32 KB to 256 KB (plus the paper's `median-total` series).
pub fn fig5(runner: &Runner, quick: bool) -> Vec<Fig5Row> {
    let sizes = if quick { vec![32, 256] } else { vec![32, 64, 128, 256] };
    cache_sweep(runner, quick, &sizes, "", |kb| RadramConfig::reference().with_l1d_size(kb * 1024))
}

/// The companion L2 sweep (256 KB–4 MB) the paper reports alongside
/// Figure 5 ("throughout this range no significant performance differences
/// occurred").
pub fn fig5_l2(runner: &Runner, quick: bool) -> Vec<Fig5Row> {
    let sizes = if quick { vec![256, 4096] } else { vec![256, 512, 1024, 2048, 4096] };
    cache_sweep(runner, quick, &sizes, "-l2", |kb| {
        RadramConfig::reference().with_l2_size(kb * 1024)
    })
}

fn cache_sweep(
    runner: &Runner,
    quick: bool,
    sizes_kb: &[usize],
    label_suffix: &str,
    cfg_of: impl Fn(usize) -> RadramConfig,
) -> Vec<Fig5Row> {
    let apps = if quick { vec![App::Database, App::Median] } else { App::ALL.to_vec() };
    let mut specs = Vec::new();
    for kind in [SystemKind::Conventional, SystemKind::Radram] {
        for &app in &apps {
            for &kb in sizes_kb {
                specs.push(RunSpec::new(app, kind, SENSITIVITY_PAGES, cfg_of(kb)));
            }
        }
    }
    let mut results = runner.run(specs).into_iter();

    let mut rows = Vec::new();
    for kind in [SystemKind::Conventional, SystemKind::Radram] {
        for &app in &apps {
            let mut points = Vec::new();
            let mut total_points = Vec::new();
            for &kb in sizes_kb {
                match results.next().expect("result per spec") {
                    Ok(r) => {
                        points.push((kb, r.kernel_cycles));
                        if app == App::Median {
                            total_points.push((kb, r.total_cycles));
                        }
                    }
                    Err(e) => eprintln!("warning: dropping {} {kind} at {kb} KB: {e}", app.name()),
                }
            }
            let suffix = match kind {
                SystemKind::Conventional => "conv",
                SystemKind::Radram => "radram",
            };
            rows.push(Fig5Row {
                label: format!("{}{}-{}", app.name(), label_suffix, suffix),
                points,
            });
            if app == App::Median {
                rows.push(Fig5Row {
                    label: format!("median-total{label_suffix}-{suffix}"),
                    points: total_points,
                });
            }
        }
    }
    rows
}

/// One sensitivity series: speedup per parameter value.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Kernel name.
    pub app: App,
    /// `(parameter value, speedup)` points.
    pub points: Vec<(u64, f64)>,
}

/// Figure 8: speedup as the cache-miss (DRAM) latency varies 0–600 ns.
pub fn fig8(runner: &Runner, quick: bool) -> Vec<SensitivityRow> {
    let latencies: Vec<u64> = if quick { vec![0, 600] } else { vec![0, 50, 100, 200, 400, 600] };
    sensitivity_sweep(runner, quick, &latencies, |ns| {
        RadramConfig::reference().with_miss_latency(ns)
    })
}

/// Figure 9: speedup as the reconfigurable-logic clock divisor varies
/// (2 = 500 MHz ... 100 = 10 MHz).
pub fn fig9(runner: &Runner, quick: bool) -> Vec<SensitivityRow> {
    let divisors: Vec<u64> = if quick { vec![2, 100] } else { vec![2, 5, 10, 20, 50, 100] };
    sensitivity_sweep(runner, quick, &divisors, |d| RadramConfig::reference().with_logic_divisor(d))
}

/// Shared Figure 8/9 machinery: for each app and parameter value, run both
/// systems through the engine and report the speedup. Points with a failed
/// half are dropped with a warning.
fn sensitivity_sweep(
    runner: &Runner,
    quick: bool,
    values: &[u64],
    cfg_of: impl Fn(u64) -> RadramConfig,
) -> Vec<SensitivityRow> {
    let apps = if quick { vec![App::Database, App::MatrixSimplex] } else { App::ALL.to_vec() };
    let mut specs = Vec::new();
    for &app in &apps {
        for &v in values {
            let cfg = cfg_of(v);
            specs.push(RunSpec::new(app, SystemKind::Conventional, SENSITIVITY_PAGES, cfg.clone()));
            specs.push(RunSpec::new(app, SystemKind::Radram, SENSITIVITY_PAGES, cfg));
        }
    }
    let mut results = runner.run(specs).into_iter();
    apps.into_iter()
        .map(|app| {
            let points = values
                .iter()
                .filter_map(|&v| {
                    let conv = results.next().expect("result per spec");
                    let rad = results.next().expect("result per spec");
                    match (conv, rad) {
                        (Ok(c), Ok(r)) => Some((v, speedup(&c, &r))),
                        (c, r) => {
                            for half in [c, r] {
                                if let Err(e) = half {
                                    eprintln!(
                                        "warning: dropping {} at parameter {v}: {e}",
                                        app.name()
                                    );
                                }
                            }
                            None
                        }
                    }
                })
                .collect();
            SensitivityRow { app, points }
        })
        .collect()
}

/// One Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Kernel name.
    pub app: App,
    /// Calibrated per-activation constants.
    pub cal: Calibration,
    /// Activations needed for complete processor-memory overlap under the
    /// constant-parameter model.
    pub pages_for_overlap: usize,
    /// Pearson correlation of model-predicted vs. measured speedups over the
    /// Figure 3 sweep.
    pub correlation: f64,
}

/// The calibration size (pages) used for Table 4.
pub const CALIBRATION_PAGES: f64 = 8.0;

/// Table 4: activation/post/compute times, overlap threshold and analytic
/// model correlation for every kernel.
pub fn table4(runner: &Runner, quick: bool) -> Vec<Table4Row> {
    let cfg = RadramConfig::reference();
    // Table 4 lists the same eight kernels as the paper (dynamic-prog is
    // absent there too: its activation times are inherently data-dependent
    // through the wavefront, violating the constant-parameter assumption).
    let apps: Vec<App> = App::ALL.into_iter().filter(|app| *app != App::DynProg).collect();

    // First engine batch: one RADram calibration run per kernel. Running it
    // before the sweeps also warms the cache for the sweeps' 8-page points.
    let cal_specs = apps
        .iter()
        .map(|&app| RunSpec::new(app, SystemKind::Radram, CALIBRATION_PAGES, cfg.clone()))
        .collect();
    let calibrations = runner.run(cal_specs);
    // Second batch: the full Figure 3 sweeps the correlation is scored on.
    let sweeps = run_sweeps(runner, &apps, &cfg, quick);

    apps.into_iter()
        .zip(calibrations)
        .zip(sweeps)
        .filter_map(|((app, rad), (_, sweep))| {
            let rad = match rad {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: dropping Table 4 row {}: {e}", app.name());
                    return None;
                }
            };
            let cal = calibrate(&rad);
            let model = cal.model();
            let mut measured = Vec::new();
            let mut predicted = Vec::new();
            for pt in &sweep {
                // Scale activations with problem size from the calibration
                // point (activations per page is app-specific but constant).
                let acts_per_page = cal.activations as f64 / CALIBRATION_PAGES;
                let k = ((pt.pages * acts_per_page).round() as usize).max(1);
                measured.push(pt.speedup());
                predicted.push(model.predicted_speedup(k, pt.conventional.kernel_cycles as f64));
            }
            Some(Table4Row {
                app,
                cal,
                pages_for_overlap: model.pages_for_overlap(1 << 26),
                correlation: pearson(&measured, &predicted),
            })
        })
        .collect()
}

/// Whole-application Amdahl validation (Figure 7's `Speedup_overall`),
/// using the median application's two phases: the layout/I-O phase is the
/// un-partitioned fraction, the filter kernel is the partitioned one.
#[derive(Debug, Clone, Copy)]
pub struct AmdahlCheck {
    /// Fraction of the conventional run spent in the partitioned kernel.
    pub fraction_partitioned: f64,
    /// Measured kernel speedup.
    pub kernel_speedup: f64,
    /// `Speedup_overall` predicted by Figure 7's formula.
    pub predicted_overall: f64,
    /// Measured whole-application speedup (total cycles ratio).
    pub measured_overall: f64,
}

/// Measures the Amdahl bound at `pages` problem size.
pub fn amdahl_check(pages: f64) -> AmdahlCheck {
    let cfg = RadramConfig::reference();
    let conv = App::Median.run(SystemKind::Conventional, pages, &cfg);
    let rad = App::Median.run(SystemKind::Radram, pages, &cfg);
    let fraction = conv.kernel_cycles as f64 / conv.total_cycles as f64;
    let kernel_speedup = ap_apps::speedup(&conv, &rad);
    AmdahlCheck {
        fraction_partitioned: fraction,
        kernel_speedup,
        predicted_overall: ap_analytic::amdahl(fraction, kernel_speedup),
        measured_overall: conv.total_cycles as f64 / rad.total_cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_reference() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert_eq!(t[5].1, "50 ns");
    }

    #[test]
    fn amdahl_formula_predicts_whole_application_speedup() {
        let c = amdahl_check(4.0);
        assert!(c.fraction_partitioned > 0.5 && c.fraction_partitioned < 1.0);
        assert!(c.kernel_speedup > c.measured_overall, "the un-partitioned phase must drag");
        let err = (c.predicted_overall - c.measured_overall).abs() / c.measured_overall;
        assert!(err < 0.2, "Amdahl prediction off by {:.0}%", err * 100.0);
    }

    #[test]
    fn fig1_has_all_three_regions() {
        let pts = fig1();
        let regions: Vec<&str> = pts.iter().map(|p| p.region).collect();
        assert!(regions.contains(&"sub-page"));
        assert!(regions.contains(&"scalable"));
        assert!(regions.contains(&"saturated"));
    }
}
