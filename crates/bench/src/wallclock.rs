//! Host-wallclock page-scaling harness (`experiments --bench-wallclock`).
//!
//! The figures measure *simulated* cycles; this harness measures how long the
//! *host* takes to drive one group activation over N pages, once with the
//! sequential oracle and once with the parallel executor, so the simulator's
//! own performance trajectory is tracked across PRs (`BENCH_page_scaling.json`
//! in the results directory).
//!
//! The kernel is compute-dense — several FNV passes over the full 512 KB page
//! body — so the timed region is dominated by page-function execution, the
//! part the parallel executor accelerates, rather than by setup or by the
//! processor-side simulation that both paths share. Every point also
//! cross-checks that the two paths agree on clock, checksum and statistics:
//! the harness doubles as an end-to-end determinism probe.

use std::sync::Arc;
use std::time::Instant;

use active_pages::{
    sync, ActivePageMemory, Execution, GroupId, PageFunction, PageSlice, PAGE_SIZE,
};
use ap_apps::fnv_mix;
use radram::{RadramConfig, System};

/// Command word that starts a hash sweep on a page.
const CMD_HASH: u32 = 1;

/// FNV passes per page: enough host work per page (~1 ms) that thread-pool
/// overhead is noise at every sweep size.
const PASSES: u32 = 4;

/// Compute-dense scaling kernel: FNV-mixes the whole page body [`PASSES`]
/// times, feeding each pass's running hash back into the body so the work is
/// data-dependent, and leaves the final hash in `RESULT`.
#[derive(Debug)]
struct BodyHashFn;

impl PageFunction for BodyHashFn {
    fn name(&self) -> &'static str {
        "bench-body-hash"
    }

    fn logic_elements(&self) -> u32 {
        32
    }

    fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
        debug_assert_eq!(page.ctrl(sync::CMD), CMD_HASH);
        let words = (PAGE_SIZE - sync::BODY_OFFSET) / 4;
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(page.info().index_in_group);
        for _ in 0..PASSES {
            for w in 0..words {
                let off = sync::BODY_OFFSET + 4 * w;
                h = (h ^ u64::from(page.read_u32(off))).wrapping_mul(0x100_0000_01b3);
                page.write_u32(off, h as u32);
            }
        }
        page.set_ctrl(sync::RESULT, h as u32);
        page.set_ctrl(sync::STATUS, sync::DONE);
        Execution::run(u64::from(PASSES) * words as u64)
    }

    fn footprint(&self) -> active_pages::StaticFootprint {
        ap_apps::whole_page_footprint()
    }
}

/// One page count of the scaling sweep, measured on both executors.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Pages in the activated group.
    pub pages: usize,
    /// Host seconds for the sequential oracle.
    pub sequential_secs: f64,
    /// Host seconds for the parallel executor.
    pub parallel_secs: f64,
}

impl ScalingPoint {
    /// Host-wallclock speedup of the parallel executor over the oracle.
    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs.max(1e-9)
    }
}

/// The swept page counts. The full sweep ends at the acceptance point
/// (1024 pages); `quick` shrinks it for smoke runs.
pub fn page_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 32]
    } else {
        vec![64, 256, 1024]
    }
}

struct Measured {
    secs: f64,
    now: u64,
    checksum: u64,
    stats: String,
}

/// Drives one activation of `pages` hash kernels and times the kernel region.
fn measure(pages: usize, sequential: bool) -> Measured {
    let cfg = RadramConfig::reference().with_ram_capacity((pages + 2) * PAGE_SIZE);
    let mut sys = System::radram(cfg);
    sys.set_sequential(sequential);
    let group = GroupId::new(1);
    let base = sys.ap_alloc_pages(group, pages);
    sys.ap_bind(group, Arc::new(BodyHashFn));
    let t = Instant::now();
    sys.activate_group(group, CMD_HASH);
    let mut checksum = 0u64;
    for p in 0..pages {
        let pb = base + (p * PAGE_SIZE) as u64;
        sys.wait_done(pb);
        checksum = fnv_mix(checksum, u64::from(sys.read_ctrl(pb, sync::RESULT)));
    }
    Measured {
        secs: t.elapsed().as_secs_f64(),
        now: sys.now(),
        checksum,
        stats: format!("{:?}", sys.stats()),
    }
}

/// Runs the sweep. Each point runs the sequential oracle first, then the
/// parallel executor, and asserts they are bit-identical before timing is
/// reported.
///
/// # Panics
///
/// Panics if the parallel executor diverges from the sequential oracle.
pub fn run(quick: bool) -> Vec<ScalingPoint> {
    page_sizes(quick)
        .into_iter()
        .map(|pages| {
            let seq = measure(pages, true);
            let par = measure(pages, false);
            assert_eq!(
                (seq.now, seq.checksum, &seq.stats),
                (par.now, par.checksum, &par.stats),
                "parallel run diverged from the sequential oracle at {pages} pages"
            );
            ScalingPoint { pages, sequential_secs: seq.secs, parallel_secs: par.secs }
        })
        .collect()
}

/// Renders the sweep as the `BENCH_page_scaling.json` payload.
pub fn render_json(points: &[ScalingPoint]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::from("{\n  \"schema\": 1,\n  \"bench\": \"page_scaling\",\n");
    s.push_str(&format!("  \"kernel\": \"{PASSES}-pass FNV hash over the 512 KB page body\",\n"));
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!("  \"page_threads\": {},\n", active_pages::parallel::thread_budget()));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pages\": {}, \"sequential_secs\": {:.6}, \"parallel_secs\": {:.6}, \
             \"speedup\": {:.3}}}{}\n",
            p.pages,
            p.sequential_secs,
            p.parallel_secs,
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_deterministic_and_renders() {
        // Give the parallel executor real threads even on a small host so the
        // oracle comparison inside `run` exercises the parallel path. The
        // budget is process-global, but parallel and sequential execution are
        // bit-identical by construction, so other tests are unaffected.
        active_pages::parallel::set_thread_budget(4);
        let points = run(true);
        assert_eq!(points.len(), page_sizes(true).len());
        let json = render_json(&points);
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"pages\": 8"), "{json}");
        assert!(json.contains("\"speedup\""), "{json}");
        for p in &points {
            assert!(p.sequential_secs > 0.0 && p.parallel_secs > 0.0);
        }
    }
}
