//! The lint corpus: every paper circuit and kernel, statically verified.
//!
//! Two views of the same artifact set. [`all_reports`] lints the whole
//! corpus — seven Table 3 circuits, two Section 10 extension circuits, six
//! SS-lite kernels — for the `aplint` binary and the clean-corpus tests.
//! [`counts_for_app`] maps one application name (as carried by
//! `RunReport::app`) onto the diagnostic totals of the artifacts that
//! implement it, which is what the engine manifest records per job.

use ap_engine::manifest::DiagCounts;
use ap_lint::Report;
use ap_synth::circuits;

/// Lints every synthesizable circuit: the seven Table 3 designs plus the
/// two Section 10 extension circuits, in that order.
pub fn circuit_reports() -> Vec<Report> {
    let mut reports: Vec<Report> =
        circuits::all().into_iter().map(|spec| ap_synth::lint::check(&(spec.build)())).collect();
    reports.push(ap_synth::lint::check(&circuits::data_primitives()));
    reports.push(ap_synth::lint::check(&circuits::entropy_decode()));
    reports
}

/// Lints the six paper workloads' SS-lite kernels.
pub fn kernel_reports() -> Vec<Report> {
    ap_risc::kernels::all()
        .into_iter()
        .map(|(name, _)| ap_risc::lint::check(name, &ap_risc::kernels::assemble_kernel(name)))
        .collect()
}

/// The full corpus: circuits first, then kernels.
pub fn all_reports() -> Vec<Report> {
    let mut reports = circuit_reports();
    reports.extend(kernel_reports());
    reports
}

/// Static race/footprint analysis (`aplint --race`) over the six SS-lite
/// kernels: one report per kernel, carrying any RC201/RC202/RC203 findings.
/// The paired footprint of each analysis is returned alongside so renderers
/// can show what was proven.
pub fn race_reports() -> Vec<(Report, ap_lint::footprint::StaticFootprint)> {
    ap_risc::kernels::all()
        .into_iter()
        .map(|(name, _)| {
            let analysis =
                ap_risc::footprint::analyze(name, &ap_risc::kernels::assemble_kernel(name));
            (analysis.report, analysis.footprint)
        })
        .collect()
}

/// The Table 3 circuit implementing `app`, if it has one (`median` is
/// processor-side only in Table 3).
fn circuit_for_app(app: &str) -> Option<fn() -> ap_synth::Netlist> {
    Some(match app {
        "array-insert" => circuits::array_insert,
        "array-delete" => circuits::array_delete,
        "array-find" => circuits::array_find,
        "database" => circuits::database,
        "dynamic-prog" => circuits::dynprog,
        "matrix-simplex" | "matrix-boeing" => circuits::matrix,
        "mpeg-mmx" => circuits::mpeg_mmx,
        _ => return None,
    })
}

/// The SS-lite kernel implementing `app`'s inner loop, if known.
fn kernel_for_app(app: &str) -> Option<&'static str> {
    Some(match app {
        "array-insert" | "array-delete" | "array-find" => "array",
        "database" => "database",
        "median" => "median",
        "dynamic-prog" => "dynamic-prog",
        "matrix-simplex" | "matrix-boeing" => "matrix",
        "mpeg-mmx" => "mpeg-mmx",
        _ => return None,
    })
}

/// Diagnostic totals for the artifacts behind application `app`: its
/// Table 3 circuit (when it has one) plus its SS-lite kernel — the kernel
/// contributing both its structural lint and its static race/footprint
/// analysis. Unknown names have no artifacts and report zero.
pub fn counts_for_app(app: &str) -> DiagCounts {
    let mut counts = DiagCounts::default();
    let mut add = |r: &Report| {
        counts.errors += r.errors();
        counts.warnings += r.warnings();
    };
    if let Some(build) = circuit_for_app(app) {
        add(&ap_synth::lint::check(&build()));
    }
    if let Some(kernel) = kernel_for_app(app) {
        let prog = ap_risc::kernels::assemble_kernel(kernel);
        add(&ap_risc::lint::check(kernel, &prog));
        add(&ap_risc::footprint::analyze(kernel, &prog).report);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_apps::App;

    #[test]
    fn corpus_covers_circuits_and_kernels() {
        let reports = all_reports();
        assert_eq!(reports.len(), 7 + 2 + 6);
    }

    #[test]
    fn every_app_has_at_least_a_kernel() {
        for app in App::ALL {
            assert!(kernel_for_app(app.name()).is_some(), "{}", app.name());
        }
    }

    #[test]
    fn unknown_apps_count_nothing() {
        assert_eq!(counts_for_app("nonesuch"), DiagCounts::default());
    }

    /// The footprint analyzer hard-codes the page geometry (ap-risc cannot
    /// depend on active-pages); this is the one place both crates are in
    /// scope, so pin the constants together here.
    #[test]
    fn footprint_analyzer_geometry_matches_simulator() {
        assert_eq!(ap_risc::footprint::PAGE_BYTES, active_pages::PAGE_SIZE as u64);
        assert_eq!(ap_risc::footprint::CTRL_BYTES, active_pages::sync::CTRL_SIZE as u64);
    }

    /// `aplint --race` acceptance: every SS-lite kernel analyzes clean and
    /// proves a page-local byte footprint.
    #[test]
    fn race_corpus_is_clean_and_page_local() {
        let reports = race_reports();
        assert_eq!(reports.len(), 6);
        for (report, footprint) in &reports {
            assert!(report.is_empty(), "{}", report.render_text());
            let fp = footprint
                .known()
                .unwrap_or_else(|| panic!("{}: footprint not statically known", report.subject()));
            let page = active_pages::PAGE_SIZE as u64;
            for &(_, end) in fp.reads.runs().iter().chain(fp.writes.runs()) {
                assert!(end <= page, "{}: run ends at {end}", report.subject());
            }
        }
    }
}
