//! Command-line parsing for the `experiments` binary.
//!
//! Kept in the library so the parser is unit-testable; the binary only
//! renders errors and exits non-zero.

use crate::runner::Runner;
use ap_apps::ExecMode;
use ap_engine::Engine;
use std::path::PathBuf;

/// Every experiment target the binary accepts, with the one-line
/// description the usage text is generated from. Single source of truth:
/// adding a row here is all it takes to document a new target.
pub const TARGETS: &[(&str, &str)] = &[
    ("all", "every paper table and figure below (the default)"),
    ("table1", "reference system parameters"),
    ("table2", "application working sets and activation counts"),
    ("table3", "partitioned-algorithm statistics"),
    ("table4", "activation time T_A per application"),
    ("fig1", "conventional vs RADram memory organization counters"),
    ("fig3", "speedup vs problem size, all nine kernels"),
    ("fig4", "processor/memory overlap breakdown"),
    ("fig5", "L1 data-cache size sensitivity"),
    ("fig8", "DRAM miss-latency sensitivity"),
    ("fig9", "reconfigurable-logic clock sensitivity"),
    ("dse", "design-space sweep with Pareto-front search (BENCH_dse.json)"),
    ("dse-smoke", "deprecated alias for `dse` (kept for old scripts)"),
    ("database-xl", "million-record sharded database point (explicit only)"),
];

/// The registered target names, in table order.
pub fn target_names() -> Vec<&'static str> {
    TARGETS.iter().map(|(name, _)| *name).collect()
}

/// The `--mode` choices: one execution tier, or both with a cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeChoice {
    /// One tier ([`ExecMode::Accurate`] or [`ExecMode::Fast`]).
    One(ExecMode),
    /// Both tiers; sweep targets cross-check fast against accurate and fail
    /// on any envelope breach.
    Both,
}

impl ModeChoice {
    fn parse(name: &str) -> Result<ModeChoice, String> {
        if name == "both" {
            return Ok(ModeChoice::Both);
        }
        ExecMode::parse(name)
            .map(ModeChoice::One)
            .map_err(|_| format!("unknown --mode {name:?} (valid: accurate, fast, both)"))
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Which experiment to run (one of [`TARGETS`], default `all`).
    pub target: String,
    /// Worker-count override (`--jobs N`). Validated at parse time: `N`
    /// must parse and be at least 1, so `--jobs 0` is a usage error (exit
    /// code 2 from the binary), never a silent fallback to a default.
    pub jobs: Option<usize>,
    /// Disable the disk cache (`--no-cache`).
    pub no_cache: bool,
    /// Manifest path override (`--manifest PATH`).
    pub manifest: Option<PathBuf>,
    /// Per-job Chrome tracing (`--trace[=DIR]`): `Some(None)` uses the
    /// default `<results dir>/traces` directory.
    pub trace: Option<Option<PathBuf>>,
    /// Subsystems recorded when tracing (`--trace-filter LIST`, default all).
    pub trace_filter: ap_trace::Filter,
    /// Run the host-wallclock page-scaling bench instead of the experiment
    /// targets (`--bench-wallclock`).
    pub bench_wallclock: bool,
    /// Execution-tier selection (`--mode accurate|fast|both`). `None` keeps
    /// each target's default: accurate for the figures, the two-tier
    /// triage-and-promote pipeline for `dse`.
    pub mode: Option<ModeChoice>,
    /// Page-count override for the batch-scaling bench (`--pages N`,
    /// `--bench-wallclock` only). Validated like `--jobs`: 0 is an error.
    pub pages: Option<usize>,
    /// Thread-budget override for the batch-scaling bench (`--threads N`,
    /// `--bench-wallclock` only). Validated like `--jobs`: 0 is an error.
    pub threads: Option<usize>,
    /// Shrink sweeps to CI size (`--quick`, equivalent to `AP_QUICK=1`).
    pub quick: bool,
}

/// The usage text. The target list is generated from [`TARGETS`], so the
/// help can never drift from what the parser accepts.
pub fn usage() -> String {
    let targets: String =
        TARGETS.iter().map(|(name, desc)| format!("  {name:<12} {desc}\n")).collect();
    format!(
        "usage: experiments [TARGET] [--jobs N] [--no-cache] [--manifest PATH]\n\
         \x20                  [--trace[=DIR]] [--trace-filter LIST] [--quick]\n\
         \x20      experiments --bench-wallclock [--pages N] [--threads N]\n\
         \n\
         Runs the paper's experiments through the ap-engine worker pool and\n\
         writes CSV files under the results directory.\n\
         \n\
         targets:\n\
         {targets}\
         \n\
         options:\n\
         \x20 --jobs N            worker threads; N must be >= 1 — a zero or\n\
         \x20                     non-numeric value is an error, never a silent\n\
         \x20                     fallback (default: AP_JOBS or all cores)\n\
         \x20 --no-cache          recompute every point, ignore the disk cache\n\
         \x20 --manifest PATH     write the JSONL run manifest to PATH\n\
         \x20 --trace[=DIR]       export one Chrome trace per computed point\n\
         \x20                     (default DIR: <results dir>/traces; view in\n\
         \x20                     chrome://tracing or summarize with aptrace)\n\
         \x20 --trace-filter LIST comma-separated subsystems to trace\n\
         \x20                     (cpu,mem,radram,risc,engine or all; default all)\n\
         \x20 --bench-wallclock   time the parallel page executor against the\n\
         \x20                     sequential oracle on a page-count sweep and\n\
         \x20                     write BENCH_page_scaling.json, then time the\n\
         \x20                     fast tier against the accurate oracle and\n\
         \x20                     write BENCH_fastmode.json, then sweep the\n\
         \x20                     database-xl batch executors and write\n\
         \x20                     BENCH_batch_scaling.json\n\
         \x20 --pages N           with --bench-wallclock: add a batch-scaling\n\
         \x20                     point at N pages beyond the built-in sweep\n\
         \x20                     (N must be >= 1, like --jobs)\n\
         \x20 --threads N         with --bench-wallclock: add a batch-scaling\n\
         \x20                     point at a thread budget of N beyond the\n\
         \x20                     built-in axis (N must be >= 1, like --jobs)\n\
         \x20 --mode M            execution tier for sweep targets: accurate\n\
         \x20                     (cycle oracle, default), fast (counted\n\
         \x20                     functional tier), or both (run both tiers,\n\
         \x20                     cross-check answers and cycle error; exits\n\
         \x20                     non-zero on an envelope breach).\n\
         \x20                     dse defaults to the two-tier pipeline: fast\n\
         \x20                     triage, then accurate promotion of the\n\
         \x20                     Pareto-front survivors\n\
         \x20 --quick             shrink sweeps to CI size (same as AP_QUICK=1)\n\
         \n\
         environment: AP_QUICK=1 shrinks sweeps, AP_JOBS sets workers,\n\
         AP_RESULTS_DIR relocates outputs, AP_NO_CACHE=1 disables the cache.",
    )
}

/// Parses the arguments after the program name.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        target: "all".to_string(),
        jobs: None,
        no_cache: false,
        manifest: None,
        trace: None,
        trace_filter: ap_trace::Filter::ALL,
        bench_wallclock: false,
        mode: None,
        pages: None,
        threads: None,
        quick: false,
    };
    let mut target_seen = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let mut value = |name: &str| {
            inline
                .clone()
                .or_else(|| args.next())
                .filter(|v| !v.is_empty())
                .ok_or(format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--jobs" => {
                // Reject rather than clamp: a user typing `--jobs 0` is
                // confused about the flag, and silently running on some
                // default worker count would hide that.
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("invalid --jobs value {v:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                cli.jobs = Some(n);
            }
            "--pages" => {
                let v = value("--pages")?;
                let n: usize = v.parse().map_err(|_| format!("invalid --pages value {v:?}"))?;
                if n == 0 {
                    return Err("--pages must be at least 1".to_string());
                }
                cli.pages = Some(n);
            }
            "--threads" => {
                let v = value("--threads")?;
                let n: usize = v.parse().map_err(|_| format!("invalid --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                cli.threads = Some(n);
            }
            "--no-cache" => cli.no_cache = true,
            "--manifest" => cli.manifest = Some(PathBuf::from(value("--manifest")?)),
            // `--trace` takes its directory inline only (`--trace=DIR`): a
            // separate token would be ambiguous with the TARGET argument.
            "--trace" => {
                cli.trace = Some(match &inline {
                    Some(v) if v.is_empty() => return Err("--trace= requires a directory".into()),
                    Some(v) => Some(PathBuf::from(v)),
                    None => None,
                })
            }
            "--trace-filter" => {
                cli.trace_filter = ap_trace::Filter::parse(&value("--trace-filter")?)?;
            }
            "--bench-wallclock" => cli.bench_wallclock = true,
            "--mode" => cli.mode = Some(ModeChoice::parse(&value("--mode")?)?),
            "--quick" => cli.quick = true,
            "--help" | "-h" => return Err("help".to_string()),
            f if f.starts_with('-') => return Err(format!("unknown option {f:?}")),
            target if !target_seen => {
                if !target_names().contains(&target) {
                    return Err(format!(
                        "unknown target {target:?} (valid: {})",
                        target_names().join(", ")
                    ));
                }
                cli.target = target.to_string();
                target_seen = true;
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    if cli.bench_wallclock && target_seen {
        return Err("--bench-wallclock replaces the experiment targets; drop the TARGET".into());
    }
    if !cli.bench_wallclock && (cli.pages.is_some() || cli.threads.is_some()) {
        return Err("--pages/--threads only apply to --bench-wallclock".into());
    }
    Ok(cli)
}

impl Cli {
    /// True when `name` (or `all`) was requested. The DSE targets (`dse`
    /// and its deprecated `dse-smoke` alias) and the `database-xl` scaling
    /// point are explicit only — `all` reproduces the paper's figures, not
    /// the extension sweeps.
    pub fn wants(&self, name: &str) -> bool {
        if name == "dse" || name == "dse-smoke" || name == "database-xl" {
            return self.target == name;
        }
        self.target == "all" || self.target == name
    }

    /// True when this invocation should shrink sweeps to CI size: `--quick`
    /// or the `AP_QUICK=1` environment.
    pub fn is_quick(&self) -> bool {
        self.quick || crate::quick_mode()
    }

    /// The execution tier for sweep targets whose default is `default`,
    /// and whether a both-tier cross-check was requested.
    pub fn mode_or(&self, default: ExecMode) -> (ExecMode, bool) {
        match self.mode {
            None => (default, false),
            Some(ModeChoice::One(m)) => (m, false),
            Some(ModeChoice::Both) => (ExecMode::Fast, true),
        }
    }

    /// Builds the engine-backed runner this invocation asked for: environment
    /// defaults, then the command-line overrides.
    pub fn runner(&self) -> Runner {
        let mut engine = Engine::from_env();
        if engine.cache_dir().is_none() {
            engine = engine.with_cache_dir(crate::results_dir().join(".ap-cache"));
        }
        if let Some(jobs) = self.jobs {
            engine = engine.with_workers(jobs);
        }
        if self.no_cache || crate::env_flag("AP_NO_CACHE") {
            engine = engine.without_cache();
        }
        engine = engine.with_manifest(self.manifest_path());
        if let Some(dir) = self.trace_dir() {
            engine = engine.with_trace_dir(dir, self.trace_filter);
        }
        Runner::with_engine(engine)
    }

    /// Where this invocation writes per-job traces: `None` when `--trace`
    /// was not given, the explicit directory or `<results dir>/traces`
    /// otherwise.
    pub fn trace_dir(&self) -> Option<PathBuf> {
        self.trace
            .as_ref()
            .map(|dir| dir.clone().unwrap_or_else(|| crate::results_dir().join("traces")))
    }

    /// Where this invocation writes its manifest: `--manifest` if given,
    /// else `manifest.jsonl` in the results directory.
    pub fn manifest_path(&self) -> PathBuf {
        self.manifest.clone().unwrap_or_else(|| crate::results_dir().join("manifest.jsonl"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_all() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.target, "all");
        assert_eq!(cli.jobs, None);
        assert!(!cli.no_cache);
        assert!(cli.wants("fig3") && cli.wants("table4"));
    }

    #[test]
    fn parses_target_and_flags_in_any_order() {
        let cli = parse(&["fig5", "--jobs", "4", "--no-cache"]).unwrap();
        assert_eq!(cli.target, "fig5");
        assert_eq!(cli.jobs, Some(4));
        assert!(cli.no_cache);
        assert!(cli.wants("fig5") && !cli.wants("fig8"));

        let cli = parse(&["--jobs=2", "--manifest=/tmp/m.jsonl", "table4"]).unwrap();
        assert_eq!(cli.jobs, Some(2));
        assert_eq!(cli.manifest, Some(PathBuf::from("/tmp/m.jsonl")));
        assert_eq!(cli.target, "table4");
    }

    #[test]
    fn parses_trace_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.trace, None);
        assert_eq!(cli.trace_dir(), None);
        assert_eq!(cli.trace_filter, ap_trace::Filter::ALL);

        let cli = parse(&["fig3", "--trace"]).unwrap();
        assert_eq!(cli.trace, Some(None));
        assert!(cli.trace_dir().is_some(), "default trace dir when --trace is bare");

        let cli = parse(&["--trace=/tmp/t", "--trace-filter", "mem,radram"]).unwrap();
        assert_eq!(cli.trace, Some(Some(PathBuf::from("/tmp/t"))));
        assert_eq!(cli.trace_dir(), Some(PathBuf::from("/tmp/t")));
        assert_eq!(
            cli.trace_filter,
            ap_trace::Filter::of(&[ap_trace::Subsystem::Mem, ap_trace::Subsystem::Radram])
        );

        assert!(parse(&["--trace="]).is_err());
        let err = parse(&["--trace-filter=bogus"]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn parses_bench_wallclock() {
        assert!(!parse(&[]).unwrap().bench_wallclock);
        assert!(parse(&["--bench-wallclock"]).unwrap().bench_wallclock);
        let err = parse(&["fig3", "--bench-wallclock"]).unwrap_err();
        assert!(err.contains("TARGET"), "{err}");
    }

    #[test]
    fn parses_mode_choices() {
        assert_eq!(parse(&[]).unwrap().mode, None);
        assert_eq!(parse(&[]).unwrap().mode_or(ExecMode::Accurate), (ExecMode::Accurate, false));
        let cli = parse(&["fig3", "--mode", "fast"]).unwrap();
        assert_eq!(cli.mode, Some(ModeChoice::One(ExecMode::Fast)));
        assert_eq!(cli.mode_or(ExecMode::Accurate), (ExecMode::Fast, false));
        let cli = parse(&["--mode=both"]).unwrap();
        assert_eq!(cli.mode, Some(ModeChoice::Both));
        assert_eq!(cli.mode_or(ExecMode::Accurate), (ExecMode::Fast, true));
        let err = parse(&["--mode", "warp"]).unwrap_err();
        assert!(err.contains("warp") && err.contains("both"), "{err}");
    }

    #[test]
    fn dse_targets_are_explicit_but_not_part_of_all() {
        let cli = parse(&["dse"]).unwrap();
        assert!(cli.wants("dse") && !cli.wants("dse-smoke") && !cli.wants("fig3"));
        let cli = parse(&["dse-smoke"]).unwrap();
        assert!(cli.wants("dse-smoke") && !cli.wants("dse"));
        let all = parse(&[]).unwrap();
        assert!(!all.wants("dse") && !all.wants("dse-smoke"), "`all` must not sweep the DSE grid");
    }

    #[test]
    fn database_xl_is_explicit_but_not_part_of_all() {
        let cli = parse(&["database-xl"]).unwrap();
        assert!(cli.wants("database-xl") && !cli.wants("fig3"));
        let all = parse(&[]).unwrap();
        assert!(!all.wants("database-xl"), "`all` must not run the scaling point");
    }

    #[test]
    fn pages_and_threads_overrides_parse_and_validate() {
        let cli = parse(&["--bench-wallclock", "--pages", "4096", "--threads=8"]).unwrap();
        assert_eq!(cli.pages, Some(4096));
        assert_eq!(cli.threads, Some(8));
        let err = parse(&["--bench-wallclock", "--pages", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["--bench-wallclock", "--threads=0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse(&["--bench-wallclock", "--pages", "many"]).is_err());
        // The overrides are bench-only: without --bench-wallclock they are
        // a usage error, not silently ignored.
        let err = parse(&["fig3", "--pages", "64"]).unwrap_err();
        assert!(err.contains("--bench-wallclock"), "{err}");
        let err = parse(&["--threads", "4"]).unwrap_err();
        assert!(err.contains("--bench-wallclock"), "{err}");
    }

    #[test]
    fn quick_flag_parses() {
        assert!(!parse(&["dse"]).unwrap().quick);
        assert!(parse(&["dse", "--quick"]).unwrap().quick);
        assert!(parse(&["dse", "--quick"]).unwrap().is_quick());
    }

    #[test]
    fn usage_lists_every_target_with_its_description() {
        let text = usage();
        for (name, desc) in TARGETS {
            assert!(text.contains(name), "usage must list {name}");
            assert!(text.contains(desc), "usage must describe {name}");
        }
    }

    #[test]
    fn rejects_unknown_targets_with_the_valid_list() {
        let err = parse(&["fig6"]).unwrap_err();
        assert!(err.contains("fig6"), "{err}");
        assert!(err.contains("fig5"), "must list valid targets: {err}");
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--manifest="]).is_err());
        assert!(parse(&["--jobs", "zero"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["fig3", "fig5"]).is_err());
    }

    #[test]
    fn jobs_zero_is_a_clear_error_not_a_fallback() {
        let err = parse(&["--jobs", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "must say what a valid value is: {err}");
        let err = parse(&["--jobs=0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // The usage text documents the constraint.
        assert!(usage().contains(">= 1"), "usage must document the --jobs floor");
    }
}
