//! Drives the `ap-dse` design-space sweep through the engine-backed
//! [`Runner`] (the `experiments dse` target; DESIGN.md §15).
//!
//! The default pipeline is two-tier: the whole grid is triaged on the fast
//! tier, the successive-halving refiner keeps the Pareto front plus its
//! nearest dominance layers, and only those survivors are re-run on the
//! cycle-accurate oracle. Every promoted point is cross-checked between
//! tiers — functional identity is mandatory ([`check_pair`] panics on a
//! checksum divergence) and the cycle error is scored against
//! [`CYCLE_ERROR_ENVELOPE`]. Single-tier sweeps (`--mode fast` /
//! `--mode accurate`) skip promotion and report the triage front directly.

use crate::cli::ModeChoice;
use crate::fastmode::{check_pair, CYCLE_ERROR_ENVELOPE};
use crate::runner::{RunSpec, Runner};
use ap_apps::ExecMode;
use ap_dse::collect::{pareto_points, Collector, ConfigPoint};
use ap_dse::grid::{expand, DseConfig, DseSpec, Grid};
use ap_dse::pareto::{front, successive_halving, OBJECTIVES};
use ap_dse::report::{DseReport, FrontRow};

/// Outcome of one design-space sweep: the analytical report plus the
/// engine telemetry the full `BENCH_dse.json` payload carries.
#[derive(Debug)]
pub struct DseRun {
    /// The analytical report (front, rungs, promoted error).
    pub report: DseReport,
    /// Jobs served from the disk cache.
    pub cache_hits: usize,
    /// Jobs submitted in total, both tiers.
    pub total_jobs: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
}

impl DseRun {
    /// The full `BENCH_dse.json` payload for this run.
    pub fn render_json(&self) -> String {
        self.report.render_json(
            self.wall_secs,
            self.cache_hits,
            self.total_jobs,
            CYCLE_ERROR_ENVELOPE,
        )
    }
}

fn to_run_spec(s: &DseSpec) -> RunSpec {
    RunSpec::new(s.app, s.kind, s.pages, s.cfg.clone()).with_mode(s.mode)
}

/// Submits one tier of `configs` to the engine and folds the outcomes,
/// updating the cache-hit / job counters.
fn sweep_tier(
    runner: &Runner,
    configs: &[DseConfig],
    mode: ExecMode,
    cache_hits: &mut usize,
    total_jobs: &mut usize,
) -> (Vec<(usize, ConfigPoint)>, usize) {
    let specs = expand(configs, mode);
    let outcomes = runner.run_outcomes(specs.iter().map(to_run_spec).collect());
    *cache_hits += outcomes.iter().filter(|o| o.cache_hit).count();
    *total_jobs += outcomes.len();
    let mut collector = Collector::new(configs.to_vec());
    for (i, o) in outcomes.into_iter().enumerate() {
        collector.push(i, o.result.ok());
    }
    collector.finish()
}

fn front_row(config_id: usize, point: &ConfigPoint, tier: &'static str) -> FrontRow {
    FrontRow {
        config_id,
        speedup: point.speedup(),
        le_mhz: point.config.le_mhz(),
        area_bytes: point.config.area_bytes(),
        config: point.config.clone(),
        tier,
    }
}

/// Runs the design-space sweep. `mode` follows the CLI convention: `None`
/// or `--mode both` runs the full triage-and-promote pipeline, `--mode
/// fast` / `--mode accurate` sweep one tier and skip promotion.
///
/// # Panics
///
/// Panics if a promoted point's checksum differs between tiers (the fast
/// tier may approximate time, never answers).
pub fn run(runner: &Runner, quick: bool, mode: Option<ModeChoice>) -> DseRun {
    let start = std::time::Instant::now();
    let grid = Grid::for_quick(quick);
    let configs = grid.configs();
    let (mode_str, triage_mode, promote) = match mode {
        None | Some(ModeChoice::Both) => ("both", ExecMode::Fast, true),
        Some(ModeChoice::One(ExecMode::Fast)) => ("fast", ExecMode::Fast, false),
        Some(ModeChoice::One(ExecMode::Accurate)) => ("accurate", ExecMode::Accurate, false),
    };

    let (mut cache_hits, mut total_jobs) = (0, 0);
    let (points, mut incomplete) =
        sweep_tier(runner, &configs, triage_mode, &mut cache_hits, &mut total_jobs);
    let pareto = pareto_points(&points);
    let triage_front = front(&pareto, &OBJECTIVES);
    let dominated = points.len() - triage_front.len();

    let (front_rows, rungs, promoted, max_err) = if promote {
        let halving = successive_halving(&pareto, &OBJECTIVES, grid.promote_budget());
        // Halving ids are positions into `points`; map them back to configs.
        let promoted_cfgs: Vec<DseConfig> =
            halving.survivors.iter().map(|&pos| points[pos].1.config.clone()).collect();
        let (acc_points, acc_incomplete) = sweep_tier(
            runner,
            &promoted_cfgs,
            ExecMode::Accurate,
            &mut cache_hits,
            &mut total_jobs,
        );
        incomplete += acc_incomplete;

        // Cross-check every promoted point between tiers: identical answers,
        // bounded cycle error (both systems).
        let mut max_err = 0.0f64;
        for (k, acc) in &acc_points {
            let fast = &points[halving.survivors[*k]].1;
            let conv =
                check_pair(acc.config.app, acc.config.pages, &acc.conventional, &fast.conventional);
            let rad = check_pair(acc.config.app, acc.config.pages, &acc.radram, &fast.radram);
            max_err = max_err.max(conv.relative_error().abs()).max(rad.relative_error().abs());
        }

        // The final front comes from accurate data over the survivors.
        let acc_pareto = pareto_points(&acc_points);
        let rows: Vec<FrontRow> = front(&acc_pareto, &OBJECTIVES)
            .into_iter()
            .map(|pos| {
                let (k, point) = &acc_points[pos];
                front_row(points[halving.survivors[*k]].0, point, "accurate")
            })
            .collect();
        (rows, halving.rungs, acc_points.len(), max_err)
    } else {
        let tier = if triage_mode == ExecMode::Fast { "fast" } else { "accurate" };
        let rows: Vec<FrontRow> = triage_front
            .iter()
            .map(|&pos| front_row(points[pos].0, &points[pos].1, tier))
            .collect();
        (rows, vec![points.len()], 0, 0.0)
    };

    DseRun {
        report: DseReport {
            quick,
            mode: mode_str,
            grid: grid.describe(),
            config_count: grid.config_count(),
            run_count: grid.run_count(),
            triage_points: points.len(),
            incomplete,
            rungs,
            promoted,
            dominated,
            max_promoted_error: max_err,
            front: front_rows,
        },
        cache_hits,
        total_jobs,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_engine::Engine;

    fn test_runner() -> Runner {
        Runner::with_engine(Engine::new().with_workers(2).without_cache())
    }

    /// One tiny single-tier sweep end to end: a 1x1x1x1x1 grid would need a
    /// custom Grid, so this uses the quick grid on the fast tier only —
    /// cheap enough for the unit suite and it exercises the whole
    /// submit/collect/front path.
    #[test]
    fn fast_tier_sweep_produces_a_front() {
        let run = run(&test_runner(), true, Some(ModeChoice::One(ExecMode::Fast)));
        let r = &run.report;
        assert_eq!(r.mode, "fast");
        assert_eq!(r.triage_points, Grid::quick().config_count());
        assert_eq!(r.incomplete, 0);
        assert!(!r.front.is_empty(), "a complete sweep always has a front");
        assert_eq!(r.promoted, 0, "single-tier sweeps skip promotion");
        assert!(r.front.iter().all(|row| row.tier == "fast"));
        assert!(r.front.windows(2).all(|w| w[0].config_id < w[1].config_id));
        assert_eq!(run.total_jobs, Grid::quick().run_count());
        let json = run.render_json();
        assert!(json.contains("\"schema\": 1"), "{json}");
    }
}
