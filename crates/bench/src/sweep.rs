//! Problem-size sweeps shared by the figures.

use crate::runner::{RunSpec, Runner};
use ap_apps::{speedup, App, ExecMode, RunReport, SystemKind};
use radram::RadramConfig;

/// One problem size measured on both systems.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Problem size in Active Pages.
    pub pages: f64,
    /// Conventional-system run.
    pub conventional: RunReport,
    /// RADram run.
    pub radram: RunReport,
}

impl SweepPoint {
    /// RADram speedup over conventional (Figure 3's y-axis). Panics if the
    /// two runs' functional results diverged.
    pub fn speedup(&self) -> f64 {
        speedup(&self.conventional, &self.radram)
    }

    /// Percent of RADram kernel cycles the processor stalled (Figure 4).
    pub fn non_overlap_percent(&self) -> f64 {
        self.radram.non_overlap_fraction() * 100.0
    }
}

/// The Figure 3/4 problem-size grid for one application, in pages.
///
/// Heavier kernels sweep to 32 pages, lighter ones to 128, covering the
/// sub-page, scalable and (for the processor-centric apps) saturated
/// regions. `quick` shrinks the grid for smoke runs.
pub fn size_grid(app: App, quick: bool) -> Vec<f64> {
    if quick {
        return vec![0.5, 2.0, 8.0];
    }
    let mut sizes = vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    match app {
        // Cheap kernels can afford the far end of the x-axis.
        App::Database | App::MatrixSimplex | App::MatrixBoeing | App::MpegMmx => {
            sizes.extend([64.0, 128.0]);
        }
        App::ArrayInsert | App::ArrayDelete | App::ArrayFind => {
            sizes.push(64.0);
        }
        App::Median | App::DynProg => {
            sizes.push(64.0);
        }
        // The scaling workload is swept by `batchscale`, not the figures;
        // a figure-style sweep of it gets the standard grid.
        App::DatabaseXl => {}
    }
    sizes
}

/// Runs `app` on both systems at one size, directly on this thread (tests
/// and one-off probes; the figures go through [`run_sweep`]).
pub fn run_point(app: App, pages: f64, cfg: &RadramConfig) -> SweepPoint {
    let conventional = app.run(SystemKind::Conventional, pages, cfg);
    let radram = app.run(SystemKind::Radram, pages, cfg);
    SweepPoint { pages, conventional, radram }
}

/// Runs the full size sweep for `app` through the engine.
pub fn run_sweep(runner: &Runner, app: App, cfg: &RadramConfig, quick: bool) -> Vec<SweepPoint> {
    run_sweeps(runner, &[app], cfg, quick).pop().map(|(_, points)| points).unwrap_or_default()
}

/// The exact [`RunSpec`] batch behind the Figure 3/4 sweeps for `apps`:
/// conventional + RADram at every [`size_grid`] point on the given execution
/// tier, in submission order (app-major, size, conventional before RADram).
/// Shared between the in-process figures ([`run_sweeps`]) and the `apctl`
/// daemon client, so a sweep submitted to a running `apd` is point-for-point
/// the same batch — same keys, same cache entries — as a local `experiments`
/// run.
pub fn sweep_specs(apps: &[App], cfg: &RadramConfig, quick: bool, mode: ExecMode) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for &app in apps {
        for pages in size_grid(app, quick) {
            for kind in [SystemKind::Conventional, SystemKind::Radram] {
                specs.push(RunSpec::new(app, kind, pages, cfg.clone()).with_mode(mode));
            }
        }
    }
    specs
}

/// [`run_sweeps`] on the accurate tier.
pub fn run_sweeps(
    runner: &Runner,
    apps: &[App],
    cfg: &RadramConfig,
    quick: bool,
) -> Vec<(App, Vec<SweepPoint>)> {
    run_sweeps_mode(runner, apps, cfg, quick, ExecMode::Accurate)
}

/// Runs the size sweeps for several applications as **one** engine batch, so
/// every point of every app shares the worker pool. A point whose job failed
/// (panic, deadline) is dropped with a warning; the surviving points keep
/// the figure usable.
pub fn run_sweeps_mode(
    runner: &Runner,
    apps: &[App],
    cfg: &RadramConfig,
    quick: bool,
    mode: ExecMode,
) -> Vec<(App, Vec<SweepPoint>)> {
    let grids: Vec<(App, Vec<f64>)> =
        apps.iter().map(|&app| (app, size_grid(app, quick))).collect();
    let specs = sweep_specs(apps, cfg, quick, mode);
    let mut results = runner.run(specs).into_iter();
    grids
        .into_iter()
        .map(|(app, sizes)| {
            let points = sizes
                .into_iter()
                .filter_map(|pages| {
                    let conv = results.next().expect("result per spec");
                    let rad = results.next().expect("result per spec");
                    match (conv, rad) {
                        (Ok(conventional), Ok(radram)) => {
                            Some(SweepPoint { pages, conventional, radram })
                        }
                        (conv, rad) => {
                            for (kind, r) in [("conventional", conv), ("radram", rad)] {
                                if let Err(e) = r {
                                    eprintln!(
                                        "warning: dropping {} {kind} at {pages} pages: {e}",
                                        app.name()
                                    );
                                }
                            }
                            None
                        }
                    }
                })
                .collect();
            (app, points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_ascending_and_cover_subpage() {
        for app in App::ALL {
            let g = size_grid(app, false);
            assert!(g[0] < 1.0, "{}: sub-page region missing", app.name());
            assert!(g.windows(2).all(|w| w[0] < w[1]));
            assert!(g.len() >= 8);
        }
    }

    #[test]
    fn quick_grid_is_small() {
        assert!(size_grid(App::Median, true).len() <= 4);
    }

    #[test]
    fn point_speedup_consistent() {
        let cfg = RadramConfig::reference();
        let p = run_point(App::Database, 0.05, &cfg);
        let s = p.speedup();
        assert!(s > 0.0);
        assert!(p.non_overlap_percent() >= 0.0 && p.non_overlap_percent() <= 100.0);
    }
}
