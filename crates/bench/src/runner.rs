//! Bridges the experiment harness onto the `ap-engine` execution substrate.
//!
//! A simulation is described by a [`RunSpec`] — application, system kind,
//! problem size and RADram configuration. Specs are `Send` even though the
//! simulated `System` is not: each job constructs its machine inside the
//! worker thread. The [`Runner`] batches specs onto an [`Engine`], so sweeps
//! run in parallel, survive a panicking point, and persist results to the
//! content-addressed disk cache.
//!
//! Cache identity has two layers:
//!
//! * the **job key** ([`RunSpec::key`]) carries everything that identifies
//!   one point — app, system, exact problem size (`f64` bits) and an FNV
//!   fingerprint of the full `RadramConfig`;
//! * the **engine salt** carries everything that invalidates results
//!   wholesale — the `ap-bench` crate version and the report-codec format
//!   version.

use ap_apps::{App, ExecMode, RunReport, SystemKind};
use ap_engine::{fnv1a, Codec, Engine, Job, JobError};
use radram::{RadramConfig, SystemStats};

/// Version of the [`report_codec`] wire format. Bump whenever the encoded
/// field set changes; old cache entries then fail to decode (their salt
/// differs) instead of being misread.
pub const REPORT_FORMAT: u32 = 3;

/// The engine cache salt shared by every harness front-end: the `ap-bench`
/// crate version plus the report-codec format version. The `apd` daemon
/// salts its cache with this same value, so a point computed by a local
/// `experiments` run and one computed by the daemon share one cache entry —
/// and serve each other byte-identical results.
pub fn harness_salt() -> String {
    format!("ap-bench-{}/report-v{REPORT_FORMAT}", env!("CARGO_PKG_VERSION"))
}

/// One simulation point, as a `Send` specification.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Application kernel to run.
    pub app: App,
    /// Which memory system.
    pub kind: SystemKind,
    /// Problem size in Active Pages.
    pub pages: f64,
    /// Full machine configuration.
    pub cfg: RadramConfig,
    /// Execution tier: the cycle-accurate oracle or the counted fast tier
    /// (DESIGN.md §13).
    pub mode: ExecMode,
}

impl RunSpec {
    /// A spec for `app` on `kind` at `pages` under `cfg`, on the accurate
    /// tier.
    pub fn new(app: App, kind: SystemKind, pages: f64, cfg: RadramConfig) -> Self {
        RunSpec { app, kind, pages, cfg, mode: ExecMode::Accurate }
    }

    /// The same spec on the given execution tier.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Stable cache/manifest key: app, system, execution tier, exact size
    /// bits and a fingerprint of the configuration (any `RadramConfig` field
    /// change — cache geometry, latencies, logic clock — changes the key).
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/p{:016x}/cfg{:016x}",
            self.app.name(),
            self.kind,
            self.mode,
            self.pages.to_bits(),
            fnv1a(format!("{:?}", self.cfg).as_bytes()),
        )
    }

    /// Runs the simulation (constructing the `System` on this thread).
    pub fn execute(&self) -> RunReport {
        let report = self.app.run_mode(self.kind, self.pages, &self.cfg, self.mode);
        record_session_metrics(&report);
        report
    }
}

/// Publishes a run's aggregate counters into the active trace session (a
/// no-op on untraced threads), so exported timelines carry end-of-run
/// totals next to the event stream they decompose.
fn record_session_metrics(r: &RunReport) {
    use ap_trace::session;
    if !session::active() {
        return;
    }
    let s = &r.stats;
    let c = &s.cpu;
    session::count("cpu.instructions", c.instructions);
    session::count("cpu.loads", c.loads);
    session::count("cpu.stores", c.stores);
    session::count("cpu.branches", c.branches);
    session::count("cpu.mispredicts", c.mispredicts);
    session::count("mem.l1d_misses", c.mem.l1d.misses);
    session::count("mem.l2_misses", c.mem.l2.misses);
    session::count("mem.dram_fills", c.mem.dram_fills);
    session::count("radram.activations", s.activations);
    session::count("radram.logic_busy_cycles", s.logic_busy_cycles);
    session::count("radram.non_overlap_cycles", s.non_overlap_cycles);
    session::count("kernel.cycles", r.kernel_cycles);
    session::count("dispatch.cycles", r.dispatch_cycles);
}

/// Executes batches of [`RunSpec`]s on an [`Engine`].
#[derive(Debug, Clone)]
pub struct Runner {
    engine: Engine,
}

impl Runner {
    /// A runner configured from the environment (`AP_JOBS`, `AP_CACHE_DIR`,
    /// `AP_JOB_TIMEOUT_SECS`), with the disk cache defaulting to
    /// `<results dir>/.ap-cache` unless `AP_NO_CACHE` is set.
    pub fn from_env() -> Runner {
        let mut engine = Engine::from_env();
        if engine.cache_dir().is_none() {
            engine = engine.with_cache_dir(crate::results_dir().join(".ap-cache"));
        }
        if crate::env_flag("AP_NO_CACHE") {
            engine = engine.without_cache();
        }
        Runner::with_engine(engine)
    }

    /// A runner over an explicitly configured engine. The engine's salt is
    /// replaced with [`harness_salt`], which keeps cache entries from one
    /// `ap-bench` version invisible to another.
    pub fn with_engine(engine: Engine) -> Runner {
        Runner { engine: engine.with_salt(harness_salt()) }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs every spec (parallel, cached, fault-isolated) and returns one
    /// result per spec in submission order.
    pub fn run(&self, specs: Vec<RunSpec>) -> Vec<Result<RunReport, JobError>> {
        self.run_outcomes(specs).into_iter().map(|o| o.result).collect()
    }

    /// Like [`Runner::run`] but returns the full engine outcomes — result
    /// plus per-job wall time and whether the disk cache served it. Sweep
    /// reports use the cache-hit flags to publish their hit ratio.
    pub fn run_outcomes(&self, specs: Vec<RunSpec>) -> Vec<ap_engine::JobOutcome<RunReport>> {
        let jobs =
            specs.into_iter().map(|spec| Job::new(spec.key(), move || spec.execute())).collect();
        self.engine.run(jobs, Some(report_codec()))
    }
}

/// The cache codec for [`RunReport`]: a line-based `key=value` format that
/// round-trips every counter exactly (`u64`s in decimal, `f64`s as raw bits).
/// The diag hook records the report's application's static-analysis totals
/// (see [`crate::lint_corpus`]) in the run manifest.
pub fn report_codec() -> Codec<RunReport> {
    Codec { encode: encode_report, decode: decode_report, diag: Some(report_diag) }
}

/// Diagnostic totals for a report: the lint findings of the circuit and
/// kernel implementing its application, plus any dynamic race findings the
/// access sanitizer recorded during the run itself. Static counts are
/// computed fresh on every job (cache hits included), so lint-pass changes
/// surface without invalidating the simulation cache; the dynamic counts
/// ride in the cached report's stats.
fn report_diag(r: &RunReport) -> ap_engine::manifest::DiagCounts {
    let mut counts = crate::lint_corpus::counts_for_app(r.app);
    counts.errors += r.stats.race_errors as u32;
    counts.warnings += r.stats.race_warnings as u32;
    counts
}

fn encode_report(r: &RunReport) -> String {
    let s = &r.stats;
    let c = &s.cpu;
    let m = &c.mem;
    let mut out = String::with_capacity(1024);
    let mut put = |k: &str, v: u64| {
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
        out.push('\n');
    };
    put("format", REPORT_FORMAT as u64);
    // `app` and `system` are written below as strings; everything numeric
    // goes through `put` so the format stays trivially greppable.
    put("pages_bits", r.pages.to_bits());
    put("kernel_cycles", r.kernel_cycles);
    put("total_cycles", r.total_cycles);
    put("dispatch_cycles", r.dispatch_cycles);
    put("checksum", r.checksum);
    put("non_overlap_cycles", s.non_overlap_cycles);
    put("activations", s.activations);
    put("interrupt_batches", s.interrupt_batches);
    put("interpage_copies", s.interpage_copies);
    put("copied_bytes", s.copied_bytes);
    put("rebinds", s.rebinds);
    put("logic_busy_cycles", s.logic_busy_cycles);
    put("race_errors", s.race_errors);
    put("race_warnings", s.race_warnings);
    put("cpu.cycles", c.cycles);
    put("cpu.instructions", c.instructions);
    put("cpu.loads", c.loads);
    put("cpu.stores", c.stores);
    put("cpu.branches", c.branches);
    put("cpu.mispredicts", c.mispredicts);
    put("cpu.flops", c.flops);
    put("cpu.mmx_ops", c.mmx_ops);
    put("mem.dram_fills", m.dram_fills);
    put("mem.dram_writebacks", m.dram_writebacks);
    put("mem.uncached", m.uncached);
    put("mem.stall_cycles", m.stall_cycles);
    for (tag, cs) in [("l1i", &m.l1i), ("l1d", &m.l1d), ("l2", &m.l2)] {
        put(&format!("{tag}.hits"), cs.hits);
        put(&format!("{tag}.misses"), cs.misses);
        put(&format!("{tag}.writes"), cs.writes);
        put(&format!("{tag}.writebacks"), cs.writebacks);
        put(&format!("{tag}.invalidated"), cs.invalidated);
    }
    out.push_str(&format!("app={}\nsystem={}\nmode={}\n", r.app, r.system, r.mode));
    out
}

fn decode_report(text: &str) -> Option<RunReport> {
    let mut fields = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once('=')?;
        fields.insert(k, v);
    }
    let num = |k: &str| -> Option<u64> { fields.get(k)?.parse().ok() };
    if num("format")? != REPORT_FORMAT as u64 {
        return None;
    }
    let app = App::by_name(fields.get("app")?)?;
    let system = match *fields.get("system")? {
        "conventional" => SystemKind::Conventional,
        "radram" => SystemKind::Radram,
        _ => return None,
    };
    let mode = ExecMode::parse(fields.get("mode")?).ok()?;

    let mut stats = SystemStats {
        non_overlap_cycles: num("non_overlap_cycles")?,
        activations: num("activations")?,
        interrupt_batches: num("interrupt_batches")?,
        interpage_copies: num("interpage_copies")?,
        copied_bytes: num("copied_bytes")?,
        rebinds: num("rebinds")?,
        logic_busy_cycles: num("logic_busy_cycles")?,
        race_errors: num("race_errors")?,
        race_warnings: num("race_warnings")?,
        ..Default::default()
    };
    let c = &mut stats.cpu;
    c.cycles = num("cpu.cycles")?;
    c.instructions = num("cpu.instructions")?;
    c.loads = num("cpu.loads")?;
    c.stores = num("cpu.stores")?;
    c.branches = num("cpu.branches")?;
    c.mispredicts = num("cpu.mispredicts")?;
    c.flops = num("cpu.flops")?;
    c.mmx_ops = num("cpu.mmx_ops")?;
    let m = &mut c.mem;
    m.dram_fills = num("mem.dram_fills")?;
    m.dram_writebacks = num("mem.dram_writebacks")?;
    m.uncached = num("mem.uncached")?;
    m.stall_cycles = num("mem.stall_cycles")?;
    for (tag, cs) in [("l1i", &mut m.l1i), ("l1d", &mut m.l1d), ("l2", &mut m.l2)] {
        cs.hits = num(&format!("{tag}.hits"))?;
        cs.misses = num(&format!("{tag}.misses"))?;
        cs.writes = num(&format!("{tag}.writes"))?;
        cs.writebacks = num(&format!("{tag}.writebacks"))?;
        cs.invalidated = num(&format!("{tag}.invalidated"))?;
    }

    Some(RunReport {
        app: app.name(),
        system,
        mode,
        pages: f64::from_bits(num("pages_bits")?),
        kernel_cycles: num("kernel_cycles")?,
        total_cycles: num("total_cycles")?,
        dispatch_cycles: num("dispatch_cycles")?,
        checksum: num("checksum")?,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_codec_roundtrips_exactly() {
        let cfg = RadramConfig::reference();
        let report = RunSpec::new(App::Database, SystemKind::Radram, 0.5, cfg).execute();
        let decoded = decode_report(&encode_report(&report)).expect("decode");
        assert_eq!(report, decoded);
    }

    #[test]
    fn decode_rejects_garbage_and_wrong_versions() {
        assert!(decode_report("").is_none());
        assert!(decode_report("not a report").is_none());
        let cfg = RadramConfig::reference();
        let good = encode_report(
            &RunSpec::new(App::Median, SystemKind::Conventional, 0.25, cfg).execute(),
        );
        assert!(decode_report(&good.replacen("format=3", "format=999", 1)).is_none());
        assert!(decode_report(&good.replace("app=median", "app=unknown-app")).is_none());
        assert!(decode_report(&good.replace("mode=accurate", "mode=warp")).is_none());
    }

    #[test]
    fn codec_roundtrips_the_fast_tier() {
        let cfg = RadramConfig::reference();
        let report = RunSpec::new(App::Database, SystemKind::Radram, 0.5, cfg)
            .with_mode(ExecMode::Fast)
            .execute();
        assert_eq!(report.mode, ExecMode::Fast);
        let decoded = decode_report(&encode_report(&report)).expect("decode");
        assert_eq!(report, decoded);
    }

    #[test]
    fn keys_distinguish_every_spec_dimension() {
        let cfg = RadramConfig::reference();
        let base = RunSpec::new(App::Database, SystemKind::Radram, 1.0, cfg.clone());
        let other_app = RunSpec::new(App::Median, SystemKind::Radram, 1.0, cfg.clone());
        let other_kind = RunSpec::new(App::Database, SystemKind::Conventional, 1.0, cfg.clone());
        let other_size = RunSpec::new(App::Database, SystemKind::Radram, 2.0, cfg.clone());
        let other_mode = base.clone().with_mode(ExecMode::Fast);
        let other_cfg =
            RunSpec::new(App::Database, SystemKind::Radram, 1.0, cfg.with_miss_latency(100));
        let keys =
            [&base, &other_app, &other_kind, &other_size, &other_mode, &other_cfg].map(|s| s.key());
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn runner_matches_direct_execution() {
        let cfg = RadramConfig::reference();
        let specs = vec![
            RunSpec::new(App::Database, SystemKind::Conventional, 0.5, cfg.clone()),
            RunSpec::new(App::Database, SystemKind::Radram, 0.5, cfg.clone()),
        ];
        let direct: Vec<RunReport> = specs.iter().map(|s| s.execute()).collect();
        let runner = Runner::with_engine(Engine::new().with_workers(2).without_cache());
        let via_engine = runner.run(specs);
        for (d, e) in direct.iter().zip(&via_engine) {
            assert_eq!(d, e.as_ref().unwrap());
        }
    }
}
