//! Experiment harness for the Active Pages reproduction.
//!
//! One function per table and figure of the paper's evaluation, each
//! returning structured data and rendered through [`render`] as the aligned
//! rows/series the paper reports. The `benches/` targets (run by
//! `cargo bench`) print one experiment each; the `experiments` binary runs
//! them all and writes CSV files under `results/`.
//!
//! Simulation points are executed through [`runner::Runner`], which batches
//! them onto the `ap-engine` worker pool: sweeps run in parallel (`AP_JOBS`
//! workers), a panicking point degrades to a warning instead of killing the
//! run, and completed points persist to a disk cache under
//! `<results dir>/.ap-cache` so re-runs only simulate what changed.
//!
//! Knobs: `AP_QUICK=1` shrinks the sweeps for smoke runs, `AP_JOBS` sets the
//! worker count, `AP_RESULTS_DIR` relocates result files, `AP_NO_CACHE=1`
//! disables the cache.
//!
//! # Examples
//!
//! ```no_run
//! let rows = ap_bench::experiments::table3();
//! ap_bench::render::print_table3(&rows);
//!
//! let runner = ap_bench::runner::Runner::from_env();
//! let data = ap_bench::experiments::fig3_fig4(&runner, true);
//! println!("{}", ap_bench::render::sweep_csv(&data));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchscale;
pub mod cli;
pub mod dse;
pub mod experiments;
pub mod fastmode;
pub mod lint_corpus;
pub mod render;
pub mod runner;
pub mod sweep;
pub mod wallclock;

pub use ap_apps::ExecMode;

use std::path::PathBuf;

/// True when the `AP_QUICK` environment variable requests reduced sweeps.
pub fn quick_mode() -> bool {
    env_flag("AP_QUICK")
}

/// True when the boolean environment variable `name` is set (non-empty,
/// not `"0"`).
pub(crate) fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// The directory result files (and the default experiment cache) live in:
/// `AP_RESULTS_DIR` if set, else `results/` under the workspace root.
pub fn results_dir() -> PathBuf {
    match std::env::var_os("AP_RESULTS_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

/// Writes `contents` to `<results dir>/<name>` and returns the written path;
/// best effort (failures are reported to stderr and return `None`, not
/// fatal).
pub fn write_result_file(name: &str, contents: &str) -> Option<PathBuf> {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}
