//! Experiment harness for the Active Pages reproduction.
//!
//! One function per table and figure of the paper's evaluation, each
//! returning structured data and rendered through [`render`] as the aligned
//! rows/series the paper reports. The `benches/` targets (run by
//! `cargo bench`) print one experiment each; the `experiments` binary runs
//! them all and writes CSV files under `results/`.
//!
//! Set `AP_QUICK=1` to shrink the sweeps for smoke runs.
//!
//! # Examples
//!
//! ```no_run
//! let rows = ap_bench::experiments::table3();
//! ap_bench::render::print_table3(&rows);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod render;
pub mod sweep;

/// True when the `AP_QUICK` environment variable requests reduced sweeps.
pub fn quick_mode() -> bool {
    std::env::var("AP_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Writes `contents` to `results/<name>` under the workspace root; best
/// effort (failures are reported to stderr, not fatal).
pub fn write_result_file(name: &str, contents: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}
