//! Text-table and CSV rendering of experiment results.

use crate::experiments::{Fig5Row, SensitivityRow, Table4Row};
use crate::sweep::SweepPoint;
use ap_analytic::Fig1Point;
use ap_apps::App;
use ap_synth::report::Table3Row;
use std::fmt::Write as _;

/// Prints Table 1 (system parameters).
pub fn print_table1(rows: &[(&'static str, String, &'static str)]) {
    println!("Table 1: RADram system parameters");
    println!("{:<14} {:>12} {:>14}", "Parameter", "Reference", "Variation");
    for (p, reference, var) in rows {
        println!("{p:<14} {reference:>12} {var:>14}");
    }
}

/// Prints Table 2 (application partitioning) from the model crate's data.
pub fn print_table2() {
    println!("Table 2: partitioning of applications between processor and active pages");
    for d in &active_pages::TABLE2 {
        println!("{:<13} [{}]", d.name, d.partitioning);
        println!("    application : {}", d.application);
        println!("    processor   : {}", d.processor_computation);
        println!("    active page : {}", d.active_page_computation);
    }
}

/// Prints Table 3 (synthesized circuits) with paper values alongside.
pub fn print_table3(rows: &[Table3Row]) {
    println!("Table 3: Active-Page functions synthesized for RADram");
    println!(
        "{:<13} {:>5} {:>7} | {:>9} {:>9} | {:>8} {:>8}",
        "Circuit", "LEs", "(paper)", "Speed", "(paper)", "Code", "(paper)"
    );
    for r in rows {
        println!(
            "{:<13} {:>5} {:>7} | {:>7.1}ns {:>7.1}ns | {:>8} {:>5.1}KB",
            r.name,
            r.les,
            r.paper_les,
            r.speed_ns,
            r.paper_speed_ns,
            format!("{:.1}KB", r.code_bytes as f64 / 1024.0),
            r.paper_code_kb,
        );
    }
}

/// Prints Table 4 (analytic-model calibration and correlation).
pub fn print_table4(rows: &[Table4Row]) {
    println!("Table 4: activation/compute times and analytic-model correlation");
    println!(
        "{:<15} {:>9} {:>9} {:>10} {:>12} {:>8}",
        "Application", "T_A (us)", "T_P (us)", "T_C (ms)", "Pgs overlap", "Correl"
    );
    for r in rows {
        println!(
            "{:<15} {:>9.3} {:>9.3} {:>10.4} {:>12} {:>8.3}",
            r.app.name(),
            r.cal.t_a_us(),
            r.cal.t_p_us(),
            r.cal.t_c_ms(),
            r.pages_for_overlap,
            r.correlation
        );
    }
}

/// Prints Figure 1 (idealized scaling regions).
pub fn print_fig1(points: &[Fig1Point]) {
    println!("Figure 1: expected computation scaling of Active Pages (idealized)");
    println!("{:>9} {:>12} {:>12} {:>10}", "pages", "speedup", "non-overlap", "region");
    for p in points {
        println!(
            "{:>9} {:>12.2} {:>11.1}% {:>10}",
            p.pages,
            p.speedup,
            p.non_overlap_fraction * 100.0,
            p.region
        );
    }
}

/// Prints one application's Figure 3/4 sweep.
pub fn print_sweep(app: App, points: &[SweepPoint]) {
    println!("-- {} --", app.name());
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "pages", "conv cycles", "radram cycles", "speedup", "non-overlap"
    );
    for p in points {
        println!(
            "{:>8.2} {:>14} {:>14} {:>10.2} {:>11.1}%",
            p.pages,
            p.conventional.kernel_cycles,
            p.radram.kernel_cycles,
            p.speedup(),
            p.non_overlap_percent()
        );
    }
}

/// Prints the Figure 5 cache-size series.
pub fn print_fig5(rows: &[Fig5Row]) {
    println!("Figure 5: execution time vs. L1 data-cache size");
    for row in rows {
        print!("{:<24}", row.label);
        for (kb, cycles) in &row.points {
            print!(" {kb:>4}K:{cycles:>13}");
        }
        println!();
    }
}

/// Prints a Figure 8/9 sensitivity sweep.
pub fn print_sensitivity(title: &str, unit: &str, rows: &[SensitivityRow]) {
    println!("{title}");
    for row in rows {
        print!("{:<15}", row.app.name());
        for (v, s) in &row.points {
            print!(" {v:>4}{unit}:{s:>8.2}x");
        }
        println!();
    }
}

/// CSV for the Figure 3/4 sweeps.
pub fn sweep_csv(data: &[(App, Vec<SweepPoint>)]) -> String {
    let mut out = String::from("app,pages,conv_cycles,radram_cycles,speedup,non_overlap_pct\n");
    for (app, points) in data {
        for p in points {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.4},{:.2}",
                app.name(),
                p.pages,
                p.conventional.kernel_cycles,
                p.radram.kernel_cycles,
                p.speedup(),
                p.non_overlap_percent()
            );
        }
    }
    out
}

/// CSV for a sensitivity sweep.
pub fn sensitivity_csv(param: &str, rows: &[SensitivityRow]) -> String {
    let mut out = format!("app,{param},speedup\n");
    for row in rows {
        for (v, s) in &row.points {
            let _ = writeln!(out, "{},{},{:.4}", row.app.name(), v, s);
        }
    }
    out
}

/// CSV for the Figure 5 series.
pub fn fig5_csv(rows: &[Fig5Row]) -> String {
    let mut out = String::from("series,l1d_kb,cycles\n");
    for row in rows {
        for (kb, cycles) in &row.points {
            let _ = writeln!(out, "{},{},{}", row.label, kb, cycles);
        }
    }
    out
}

/// CSV for Table 4.
pub fn table4_csv(rows: &[Table4Row]) -> String {
    let mut out = String::from("app,t_a_us,t_p_us,t_c_ms,pages_for_overlap,correlation\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.5},{},{:.4}",
            r.app.name(),
            r.cal.t_a_us(),
            r.cal.t_p_us(),
            r.cal.t_c_ms(),
            r.pages_for_overlap,
            r.correlation
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_headers_present() {
        assert!(sweep_csv(&[]).starts_with("app,pages"));
        assert!(sensitivity_csv("ns", &[]).starts_with("app,ns"));
        assert!(fig5_csv(&[]).starts_with("series,"));
        assert!(table4_csv(&[]).starts_with("app,t_a_us"));
    }
}
