//! The legacy `dse-smoke` surface, moved here from `ap-bench::fastmode`.
//!
//! Before the grid model existed, `dse-smoke` swept one axis — a dense
//! problem-size ladder at the reference configuration — as an engine
//! stress test. The `dse-smoke` CLI target now forwards to the full `dse`
//! pipeline; this module keeps the ladder and the summary shape so older
//! tooling (and the forwarding alias) still has a stable vocabulary.

use ap_apps::{App, ExecMode, SystemKind};
use radram::RadramConfig;

use crate::grid::DseSpec;

/// The legacy `dse-smoke` problem-size grid: a dense log-ish ladder so the
/// target exercises a few hundred engine jobs in fast mode.
pub fn dse_grid(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.5, 2.0, 8.0, 32.0]
    } else {
        vec![
            0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
            96.0, 128.0,
        ]
    }
}

/// The legacy `dse-smoke` spec batch: every kernel, both systems, the full
/// [`dse_grid`] at the reference configuration, on one tier. Config indices
/// number the (app, pages) points in ladder order, following the
/// [`crate::grid::expand`] pairing convention (conventional before RADram).
pub fn dse_specs(quick: bool, mode: ExecMode) -> Vec<DseSpec> {
    let cfg = RadramConfig::reference();
    let mut specs = Vec::new();
    let mut config_index = 0;
    for app in App::ALL {
        for &pages in &dse_grid(quick) {
            for kind in [SystemKind::Conventional, SystemKind::Radram] {
                specs.push(DseSpec { config_index, app, kind, pages, cfg: cfg.clone(), mode });
            }
            config_index += 1;
        }
    }
    specs
}

/// Outcome summary in the legacy `dse-smoke` shape.
#[derive(Debug, Clone)]
pub struct DseSummary {
    /// Runs attempted.
    pub points: usize,
    /// Runs or design points lost to failures (panic, deadline).
    pub failed: usize,
    /// Largest absolute relative cycle error, when both tiers ran; `None`
    /// on a single-tier run.
    pub max_cycle_error: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dse_grid_is_a_few_hundred_points() {
        let full = dse_specs(false, ExecMode::Fast).len();
        assert!((200..=500).contains(&full), "got {full}");
        assert!(dse_specs(true, ExecMode::Fast).len() < full);
    }

    #[test]
    fn smoke_specs_follow_the_expand_pairing() {
        let specs = dse_specs(true, ExecMode::Fast);
        for (i, pair) in specs.chunks(2).enumerate() {
            assert_eq!(pair[0].config_index, i);
            assert_eq!(pair[1].config_index, i);
            assert_eq!(pair[0].kind, SystemKind::Conventional);
            assert_eq!(pair[1].kind, SystemKind::Radram);
        }
    }
}
