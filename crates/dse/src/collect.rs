//! Streaming collection of engine results into per-config design points.
//!
//! The engine returns one [`RunReport`] per [`crate::grid::DseSpec`]; a
//! [`Collector`] folds them back onto their originating
//! [`crate::grid::DseConfig`]s — conventional and RADram halves reunited —
//! regardless of arrival order. Configs missing either half (a failed or
//! skipped run) are counted, not silently dropped, so a sweep always
//! accounts for its whole grid.

use ap_apps::{speedup, RunReport, SystemKind};

use crate::grid::DseConfig;
use crate::pareto::ParetoPoint;

/// A fully-measured design point: one config with both system runs.
#[derive(Debug, Clone)]
pub struct ConfigPoint {
    /// The design-space cell.
    pub config: DseConfig,
    /// The conventional-system run.
    pub conventional: RunReport,
    /// The RADram run.
    pub radram: RunReport,
}

impl ConfigPoint {
    /// RADram speedup over conventional on kernel cycles.
    ///
    /// # Panics
    ///
    /// Panics if the two halves disagree on the functional result (see
    /// [`ap_apps::speedup`]).
    pub fn speedup(&self) -> f64 {
        speedup(&self.conventional, &self.radram)
    }

    /// Objective vector in [`crate::pareto::OBJECTIVES`] order:
    /// `[speedup, le_mhz, area_bytes]`.
    pub fn objectives(&self) -> Vec<f64> {
        vec![self.speedup(), self.config.le_mhz(), self.config.area_bytes() as f64]
    }
}

/// Folds per-spec run reports into per-config [`ConfigPoint`]s.
///
/// Spec indices follow the [`crate::grid::expand`] convention: spec `2k` is
/// config `k`'s conventional run, spec `2k + 1` its RADram run.
#[derive(Debug)]
pub struct Collector {
    configs: Vec<DseConfig>,
    conventional: Vec<Option<RunReport>>,
    radram: Vec<Option<RunReport>>,
    failed: usize,
}

impl Collector {
    /// A collector for the given expansion-ordered configs.
    pub fn new(configs: Vec<DseConfig>) -> Collector {
        let n = configs.len();
        Collector { configs, conventional: vec![None; n], radram: vec![None; n], failed: 0 }
    }

    /// Folds in the result of spec `spec_index`; `None` records a failed
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if `spec_index` is out of range for the grid, if the report's
    /// system disagrees with the index parity, or if the slot was already
    /// filled.
    pub fn push(&mut self, spec_index: usize, report: Option<RunReport>) {
        let config = spec_index / 2;
        assert!(config < self.configs.len(), "spec index {spec_index} outside the grid");
        let (slot, expected) = if spec_index.is_multiple_of(2) {
            (&mut self.conventional[config], SystemKind::Conventional)
        } else {
            (&mut self.radram[config], SystemKind::Radram)
        };
        assert!(slot.is_none(), "spec index {spec_index} collected twice");
        match report {
            Some(r) => {
                assert_eq!(r.system, expected, "spec index {spec_index} has the wrong system");
                *slot = Some(r);
            }
            None => self.failed += 1,
        }
    }

    /// Finishes the fold: complete points tagged with their config index
    /// (ascending), plus the number of configs left incomplete by failed or
    /// missing runs.
    pub fn finish(self) -> (Vec<(usize, ConfigPoint)>, usize) {
        let mut points = Vec::with_capacity(self.configs.len());
        let mut incomplete = 0;
        for (id, ((config, conv), rad)) in
            self.configs.into_iter().zip(self.conventional).zip(self.radram).enumerate()
        {
            match (conv, rad) {
                (Some(conventional), Some(radram)) => {
                    points.push((id, ConfigPoint { config, conventional, radram }));
                }
                _ => incomplete += 1,
            }
        }
        (points, incomplete)
    }

    /// Number of runs recorded as failed so far.
    pub fn failed_runs(&self) -> usize {
        self.failed
    }
}

/// Lifts collected points into objective space. Pareto ids are the
/// *positions* in `points`, not the config ids — callers map a front id back
/// through `points[id]` to recover the config.
pub fn pareto_points(points: &[(usize, ConfigPoint)]) -> Vec<ParetoPoint> {
    points
        .iter()
        .enumerate()
        .map(|(pos, (_, point))| ParetoPoint::new(pos, point.objectives()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_apps::{App, ExecMode};
    use radram::SystemStats;

    fn config(app: App) -> DseConfig {
        DseConfig {
            app,
            pages: 2.0,
            l1d_size: 64 << 10,
            l1d_assoc: 2,
            l1d_block: 32,
            logic_divisor: 10,
        }
    }

    fn report(app: App, system: SystemKind, kernel_cycles: u64) -> RunReport {
        RunReport {
            app: app.name(),
            system,
            mode: ExecMode::Fast,
            pages: 2.0,
            kernel_cycles,
            total_cycles: kernel_cycles,
            dispatch_cycles: 0,
            checksum: 0xfeed,
            stats: SystemStats::default(),
        }
    }

    #[test]
    fn collector_reunites_halves_in_any_order() {
        let configs = vec![config(App::Database), config(App::Median)];
        let mut c = Collector::new(configs);
        c.push(3, Some(report(App::Median, SystemKind::Radram, 100)));
        c.push(0, Some(report(App::Database, SystemKind::Conventional, 900)));
        c.push(2, Some(report(App::Median, SystemKind::Conventional, 800)));
        c.push(1, Some(report(App::Database, SystemKind::Radram, 300)));
        let (points, incomplete) = c.finish();
        assert_eq!(incomplete, 0);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, 0);
        assert!((points[0].1.speedup() - 3.0).abs() < 1e-12);
        assert!((points[1].1.speedup() - 8.0).abs() < 1e-12);
        let pp = pareto_points(&points);
        assert_eq!(pp.len(), 2);
        assert_eq!(pp[1].id, 1, "pareto ids are positions");
        assert_eq!(pp[0].objectives.len(), crate::pareto::OBJECTIVES.len());
    }

    #[test]
    fn failed_runs_drop_only_their_config() {
        let configs = vec![config(App::Database), config(App::Median)];
        let mut c = Collector::new(configs);
        c.push(0, Some(report(App::Database, SystemKind::Conventional, 900)));
        c.push(1, None); // RADram half failed
        c.push(2, Some(report(App::Median, SystemKind::Conventional, 800)));
        c.push(3, Some(report(App::Median, SystemKind::Radram, 100)));
        assert_eq!(c.failed_runs(), 1);
        let (points, incomplete) = c.finish();
        assert_eq!(incomplete, 1);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].0, 1, "the surviving point is the median config");
    }

    #[test]
    #[should_panic(expected = "wrong system")]
    fn mismatched_system_is_rejected() {
        let mut c = Collector::new(vec![config(App::Database)]);
        c.push(0, Some(report(App::Database, SystemKind::Radram, 1)));
    }

    #[test]
    #[should_panic(expected = "collected twice")]
    fn double_collection_is_rejected() {
        let mut c = Collector::new(vec![config(App::Database)]);
        c.push(0, Some(report(App::Database, SystemKind::Conventional, 1)));
        c.push(0, Some(report(App::Database, SystemKind::Conventional, 1)));
    }
}
