//! Design-space exploration (DSE) over the Active Pages engine.
//!
//! The paper's Figures 3–9 each fix all-but-one axis of a large design
//! space: problem size × cache geometry × logic-clock divisor × kernel ×
//! memory system. This crate sweeps that space *whole*, the way the
//! Ramulator 2.0 re-evaluation sweeps configurations to find which
//! conclusions are timing-model-sensitive:
//!
//! * [`grid`] — a declarative [`grid::Axis`]/[`grid::Grid`] model that
//!   expands to canonical batches of [`grid::DseSpec`]s, two runs
//!   (conventional + RADram) per [`grid::DseConfig`];
//! * [`collect`] — a streaming [`collect::Collector`] that folds engine
//!   results into per-config [`collect::ConfigPoint`]s in any arrival
//!   order;
//! * [`pareto`] — n-dimensional dominance, non-dominated sorting and a
//!   successive-halving refiner that triages a cheap (fast-tier) sweep and
//!   promotes only front-adjacent survivors to the expensive tier;
//! * [`report`] — the schema-versioned `BENCH_dse.json` payload, the
//!   deterministic `BENCH_dse_front.json` companion, and a human-readable
//!   front table;
//! * [`smoke`] — the legacy `dse-smoke` problem-size ladder, kept as a
//!   deprecated compatibility surface (the target itself now forwards to
//!   the full `dse` pipeline).
//!
//! The crate is deliberately engine-agnostic: it depends only on the
//! application and configuration models, so the batch harness
//! (`experiments dse`), the daemon client (`apctl dse`) and tests all
//! expand and analyze *the same* grid — same specs, same canonical order,
//! same cache keys (see DESIGN.md §15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod grid;
pub mod pareto;
pub mod report;
pub mod smoke;
