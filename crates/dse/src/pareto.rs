//! N-dimensional Pareto dominance, non-dominated sorting, and the
//! successive-halving refiner.
//!
//! Points live in an objective space described by a slice of [`Objective`]s
//! (each axis maximized or minimized). The front ([`front`]) and the layer
//! decomposition ([`layers`]) are **order-invariant**: they depend only on
//! the set of `(id, objectives)` pairs, never on input order, so a shuffled
//! sweep produces a byte-identical report. Ties (equal vectors) never
//! dominate each other, so duplicates survive together.

/// Direction of one objective axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objective {
    /// Axis name as it appears in reports.
    pub name: &'static str,
    /// `true` to maximize the axis, `false` to minimize it.
    pub maximize: bool,
}

/// The three objectives of the stock DSE sweep: RADram speedup
/// (maximized) versus the logic bandwidth budget and the cache area the
/// configuration spends (both minimized).
pub const OBJECTIVES: [Objective; 3] = [
    Objective { name: "speedup", maximize: true },
    Objective { name: "le_mhz", maximize: false },
    Objective { name: "area_bytes", maximize: false },
];

/// A point in objective space, tagged with a stable caller-assigned id.
///
/// Objective values must be finite: NaN compares false both ways, which
/// would make a point both undominatable and non-dominating and silently
/// corrupt the front.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Stable id the caller maps back to a configuration.
    pub id: usize,
    /// One value per objective axis, in axis order.
    pub objectives: Vec<f64>,
}

impl ParetoPoint {
    /// A point with the given id and objective values.
    ///
    /// # Panics
    ///
    /// Panics if any objective value is not finite.
    pub fn new(id: usize, objectives: Vec<f64>) -> ParetoPoint {
        assert!(
            objectives.iter().all(|v| v.is_finite()),
            "objective values must be finite: {objectives:?}"
        );
        ParetoPoint { id, objectives }
    }
}

/// True when `a` dominates `b`: at least as good on every axis (oriented by
/// `axes`) and strictly better on at least one.
///
/// # Panics
///
/// Panics if either point's dimensionality differs from `axes`.
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint, axes: &[Objective]) -> bool {
    assert_eq!(a.objectives.len(), axes.len(), "point {} has wrong dimensionality", a.id);
    assert_eq!(b.objectives.len(), axes.len(), "point {} has wrong dimensionality", b.id);
    let mut strictly = false;
    for (i, axis) in axes.iter().enumerate() {
        let (x, y) = if axis.maximize {
            (a.objectives[i], b.objectives[i])
        } else {
            (b.objectives[i], a.objectives[i])
        };
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// The Pareto front: ids of every point no other point dominates, sorted
/// ascending (so the result is independent of input order).
pub fn front(points: &[ParetoPoint], axes: &[Objective]) -> Vec<usize> {
    let mut ids: Vec<usize> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p, axes)))
        .map(|p| p.id)
        .collect();
    ids.sort_unstable();
    ids
}

/// Non-dominated sorting: layer 0 is the front, layer `k` is the front of
/// the points left after removing layers `0..k`. Ids within each layer are
/// sorted ascending. Implemented with domination counts, so the whole
/// decomposition is one O(n²) pairwise pass regardless of depth.
pub fn layers(points: &[ParetoPoint], axes: &[Objective]) -> Vec<Vec<usize>> {
    let n = points.len();
    // Sort by id first so positions — and therefore the per-layer output
    // order — cannot depend on input order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| points[i].id);
    let mut dominated_by = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a_pos, &a) in order.iter().enumerate() {
        for &b in &order[a_pos + 1..] {
            if dominates(&points[a], &points[b], axes) {
                dominates_list[a].push(b);
                dominated_by[b] += 1;
            } else if dominates(&points[b], &points[a], axes) {
                dominates_list[b].push(a);
                dominated_by[a] += 1;
            }
        }
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = order.iter().copied().filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        out.push(current.iter().map(|&i| points[i].id).collect());
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable_by_key(|&i| points[i].id);
        current = next;
    }
    out
}

/// Outcome of one successive-halving triage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Halving {
    /// Population at each rung, starting with the full grid and halving
    /// down to the survivor count.
    pub rungs: Vec<usize>,
    /// Ids promoted to the next tier, sorted ascending. Always a superset
    /// of the triage-tier Pareto front.
    pub survivors: Vec<usize>,
}

/// Successive halving over dominance ranks: repeatedly halves the
/// population, keeping the best half by non-dominated layer (ties within
/// the cut layer broken by ascending id), until at most
/// `max(budget, |front|)` points remain. The full layer-0 front always
/// survives — the refiner exists to drop *dominated* bulk, never a true
/// front point seen at triage.
pub fn successive_halving(points: &[ParetoPoint], axes: &[Objective], budget: usize) -> Halving {
    let ranked = layers(points, axes);
    let front_len = ranked.first().map_or(0, Vec::len);
    let keep = budget.max(front_len).min(points.len());
    let mut rungs = vec![points.len()];
    while *rungs.last().expect("non-empty") > keep {
        let next = rungs.last().expect("non-empty").div_ceil(2).max(keep);
        rungs.push(next);
    }
    let mut survivors: Vec<usize> = ranked.into_iter().flatten().take(keep).collect();
    survivors.sort_unstable();
    Halving { rungs, survivors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: usize, speedup: f64, le: f64, area: f64) -> ParetoPoint {
        ParetoPoint::new(id, vec![speedup, le, area])
    }

    #[test]
    fn dominance_respects_axis_direction() {
        let better = p(0, 10.0, 100.0, 1000.0);
        let worse = p(1, 5.0, 200.0, 1000.0);
        assert!(dominates(&better, &worse, &OBJECTIVES));
        assert!(!dominates(&worse, &better, &OBJECTIVES));
        // Equal vectors never dominate each other.
        let twin = p(2, 10.0, 100.0, 1000.0);
        assert!(!dominates(&better, &twin, &OBJECTIVES));
        assert!(!dominates(&twin, &better, &OBJECTIVES));
    }

    #[test]
    fn front_keeps_exactly_the_non_dominated_points() {
        let pts = vec![
            p(0, 10.0, 100.0, 1000.0), // front: best speedup
            p(1, 5.0, 50.0, 1000.0),   // front: cheapest logic
            p(2, 5.0, 100.0, 500.0),   // front: smallest area
            p(3, 4.0, 100.0, 1000.0),  // dominated by 0
            p(4, 10.0, 100.0, 1000.0), // tie with 0: survives
        ];
        assert_eq!(front(&pts, &OBJECTIVES), vec![0, 1, 2, 4]);
    }

    #[test]
    fn layers_decompose_a_chain() {
        let pts: Vec<ParetoPoint> = (0..5).map(|i| p(i, (5 - i) as f64, 100.0, 1000.0)).collect();
        let ranked = layers(&pts, &OBJECTIVES);
        assert_eq!(ranked, vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn halving_keeps_the_front_past_any_budget() {
        let mut pts =
            vec![p(0, 10.0, 100.0, 1000.0), p(1, 5.0, 50.0, 1000.0), p(2, 5.0, 100.0, 500.0)];
        for i in 3..20 {
            pts.push(p(i, 1.0, 200.0, 2000.0)); // dominated bulk
        }
        let h = successive_halving(&pts, &OBJECTIVES, 1);
        assert_eq!(h.survivors, vec![0, 1, 2], "budget 1 still keeps the whole front");
        assert_eq!(*h.rungs.first().unwrap(), 20);
        assert_eq!(*h.rungs.last().unwrap(), 3);
        assert!(h.rungs.windows(2).all(|w| w[1] >= w[0].div_ceil(2).min(w[0])));
    }

    #[test]
    fn halving_budget_admits_front_adjacent_points() {
        let pts = vec![
            p(0, 10.0, 100.0, 1000.0), // layer 0
            p(1, 9.0, 100.0, 1000.0),  // layer 1
            p(2, 8.0, 100.0, 1000.0),  // layer 2
            p(3, 7.0, 100.0, 1000.0),  // layer 3
        ];
        let h = successive_halving(&pts, &OBJECTIVES, 2);
        assert_eq!(h.survivors, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_objectives_are_rejected() {
        let _ = ParetoPoint::new(0, vec![f64::NAN, 1.0, 1.0]);
    }
}
