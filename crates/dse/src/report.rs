//! Report model for design-space sweeps: the schema-versioned
//! `BENCH_dse.json` payload, the deterministic `BENCH_dse_front.json`
//! companion, and a human-readable front table.
//!
//! Two files on purpose: the full report carries wall-clock and cache-hit
//! telemetry that legitimately varies run to run, while the front file holds
//! only the grid's analytical outcome — CI reruns a sweep and byte-compares
//! the front file to prove the pipeline deterministic.

use crate::grid::DseConfig;
use crate::smoke::DseSummary;

/// Version of the `BENCH_dse.json` / `BENCH_dse_front.json` schema.
pub const DSE_SCHEMA: u32 = 1;

/// One Pareto-optimal design point, as reported.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontRow {
    /// Canonical config index in the grid expansion.
    pub config_id: usize,
    /// The design-space cell.
    pub config: DseConfig,
    /// RADram speedup over conventional (maximized).
    pub speedup: f64,
    /// Logic bandwidth budget in LE·MHz (minimized).
    pub le_mhz: f64,
    /// Processor cache area in bytes (minimized).
    pub area_bytes: u64,
    /// Execution tier the reported numbers come from
    /// (`"fast"` or `"accurate"`).
    pub tier: &'static str,
}

impl FrontRow {
    fn json(&self, indent: &str) -> String {
        let c = &self.config;
        format!(
            "{indent}{{\"config_id\": {}, \"app\": \"{}\", \"pages\": {}, \
             \"l1d_size\": {}, \"l1d_assoc\": {}, \"l1d_block\": {}, \
             \"logic_divisor\": {}, \"speedup\": {:.4}, \"le_mhz\": {:.1}, \
             \"area_bytes\": {}, \"tier\": \"{}\"}}",
            self.config_id,
            c.app.name(),
            c.pages,
            c.l1d_size,
            c.l1d_assoc,
            c.l1d_block,
            c.logic_divisor,
            self.speedup,
            self.le_mhz,
            self.area_bytes,
            self.tier,
        )
    }
}

/// Analytical outcome of one design-space sweep.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Whether the quick (CI) grid was swept.
    pub quick: bool,
    /// Sweep mode: `"both"`, `"fast"` or `"accurate"`.
    pub mode: &'static str,
    /// One-line grid description (see [`crate::grid::Grid::describe`]).
    pub grid: String,
    /// Design points in the grid.
    pub config_count: usize,
    /// Simulation runs submitted at the triage tier.
    pub run_count: usize,
    /// Design points with both system runs complete at triage.
    pub triage_points: usize,
    /// Design points dropped by failed or missing runs.
    pub incomplete: usize,
    /// Successive-halving rung populations, grid size down to survivors.
    pub rungs: Vec<usize>,
    /// Design points promoted to the accurate tier (0 in single-tier
    /// modes).
    pub promoted: usize,
    /// Triage points dominated off the front.
    pub dominated: usize,
    /// Largest fast-vs-accurate relative kernel-cycle error over promoted
    /// points (0 when nothing was promoted).
    pub max_promoted_error: f64,
    /// The Pareto front, by ascending config id.
    pub front: Vec<FrontRow>,
}

impl DseReport {
    /// The deterministic `BENCH_dse_front.json` payload: schema plus the
    /// analytical outcome only — no wall-clock, no cache telemetry. Two
    /// sweeps of the same grid must produce byte-identical front files.
    pub fn front_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {DSE_SCHEMA},\n"));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"config_count\": {},\n", self.config_count));
        out.push_str(&format!("  \"dominated\": {},\n", self.dominated));
        out.push_str("  \"front\": [\n");
        let rows: Vec<String> = self.front.iter().map(|r| r.json("    ")).collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The full `BENCH_dse.json` payload: the front plus sweep telemetry —
    /// wall-clock, engine cache-hit ratio, halving schedule and the
    /// promoted-point error against the `envelope` bound.
    pub fn render_json(
        &self,
        wall_secs: f64,
        cache_hits: usize,
        total_jobs: usize,
        envelope: f64,
    ) -> String {
        let ratio = if total_jobs == 0 { 0.0 } else { cache_hits as f64 / total_jobs as f64 };
        let rungs: Vec<String> = self.rungs.iter().map(usize::to_string).collect();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {DSE_SCHEMA},\n"));
        out.push_str("  \"bench\": \"dse\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"grid\": \"{}\",\n", self.grid));
        out.push_str(&format!("  \"config_count\": {},\n", self.config_count));
        out.push_str(&format!("  \"run_count\": {},\n", self.run_count));
        out.push_str(&format!("  \"triage_points\": {},\n", self.triage_points));
        out.push_str(&format!("  \"incomplete\": {},\n", self.incomplete));
        out.push_str(&format!("  \"rungs\": [{}],\n", rungs.join(", ")));
        out.push_str(&format!("  \"promoted\": {},\n", self.promoted));
        out.push_str(&format!("  \"dominated\": {},\n", self.dominated));
        out.push_str(&format!("  \"max_promoted_cycle_error\": {:.4},\n", self.max_promoted_error));
        out.push_str(&format!("  \"cycle_error_envelope\": {envelope:.4},\n"));
        out.push_str(&format!("  \"sweep_wall_secs\": {wall_secs:.3},\n"));
        out.push_str(&format!("  \"cache_hits\": {cache_hits},\n"));
        out.push_str(&format!("  \"total_jobs\": {total_jobs},\n"));
        out.push_str(&format!("  \"cache_hit_ratio\": {ratio:.4},\n"));
        out.push_str("  \"front\": [\n");
        let rows: Vec<String> = self.front.iter().map(|r| r.json("    ")).collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable front table, one row per Pareto-optimal point.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>9} {:>10} {:>10}  tier\n",
            "config", "speedup", "LE-MHz", "area-KB"
        ));
        for row in &self.front {
            out.push_str(&format!(
                "{:<42} {:>9.2} {:>10.1} {:>10} {:>5}\n",
                row.config.label(),
                row.speedup,
                row.le_mhz,
                row.area_bytes >> 10,
                row.tier,
            ));
        }
        out.push_str(&format!(
            "front {} / {} points ({} dominated, {} promoted, max err {:.3})\n",
            self.front.len(),
            self.triage_points,
            self.dominated,
            self.promoted,
            self.max_promoted_error,
        ));
        out
    }

    /// Summary in the legacy `dse-smoke` shape, for the deprecated alias.
    pub fn summary(&self) -> DseSummary {
        DseSummary {
            points: self.triage_points,
            failed: self.incomplete,
            max_cycle_error: (self.promoted > 0).then_some(self.max_promoted_error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_apps::App;

    fn report() -> DseReport {
        let config = DseConfig {
            app: App::Database,
            pages: 2.0,
            l1d_size: 64 << 10,
            l1d_assoc: 2,
            l1d_block: 32,
            logic_divisor: 10,
        };
        DseReport {
            quick: true,
            mode: "both",
            grid: "tiny".into(),
            config_count: 4,
            run_count: 8,
            triage_points: 4,
            incomplete: 0,
            rungs: vec![4, 2],
            promoted: 2,
            dominated: 3,
            max_promoted_error: 0.12,
            front: vec![FrontRow {
                config_id: 1,
                speedup: 7.5,
                le_mhz: config.le_mhz(),
                area_bytes: config.area_bytes(),
                config,
                tier: "accurate",
            }],
        }
    }

    #[test]
    fn front_json_is_versioned_and_deterministic() {
        let r = report();
        let json = r.front_json();
        assert!(json.starts_with("{\n  \"schema\": 1,\n"), "{json}");
        assert!(json.contains("\"app\": \"database\""));
        assert!(json.contains("\"speedup\": 7.5000"));
        assert_eq!(json, r.front_json(), "same report, same bytes");
        assert!(!json.contains("wall"), "front file must not carry telemetry");
    }

    #[test]
    fn full_json_carries_sweep_telemetry() {
        let json = report().render_json(12.5, 90, 100, 0.4);
        for needle in [
            "\"schema\": 1",
            "\"bench\": \"dse\"",
            "\"sweep_wall_secs\": 12.500",
            "\"cache_hit_ratio\": 0.9000",
            "\"max_promoted_cycle_error\": 0.1200",
            "\"cycle_error_envelope\": 0.4000",
            "\"rungs\": [4, 2]",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn table_lists_the_front() {
        let t = report().table();
        assert!(t.contains("database"), "{t}");
        assert!(t.contains("front 1 / 4 points"), "{t}");
        let s = report().summary();
        assert_eq!(s.points, 4);
        assert!((s.max_cycle_error.unwrap() - 0.12).abs() < 1e-12);
    }
}
