//! Declarative design-space grids over the RADram configuration space.
//!
//! A [`Grid`] is a cross product of named [`Axis`] values: every
//! combination of problem size, L1D cache geometry (size × associativity ×
//! block) and logic-clock divisor, for every kernel, on both memory
//! systems. [`Grid::configs`] expands it in one canonical order — app-major,
//! then pages, size, associativity, block, divisor — and [`expand`] turns
//! configs into per-run [`DseSpec`]s (conventional before RADram), so every
//! front end that walks the same grid submits byte-identical batches.

use ap_apps::{App, ExecMode, SystemKind};
use radram::RadramConfig;

/// One named dimension of a [`Grid`].
#[derive(Debug, Clone)]
pub struct Axis<T> {
    /// Axis name as it appears in reports (`pages`, `l1d_size`, ...).
    pub name: &'static str,
    /// Values swept, in canonical order.
    pub values: Vec<T>,
}

impl<T> Axis<T> {
    /// An axis named `name` sweeping `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — a grid with an empty axis expands to
    /// nothing, which is never what a sweep means.
    pub fn new(name: &'static str, values: Vec<T>) -> Axis<T> {
        assert!(!values.is_empty(), "axis {name} must sweep at least one value");
        Axis { name, values }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false: empty axes are rejected at construction.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One cell of the design space: a kernel at a problem size under a specific
/// machine configuration. A config describes **both** systems — its
/// objective values need a conventional and a RADram run (see
/// [`crate::collect::ConfigPoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// Application kernel.
    pub app: App,
    /// Problem size in Active Pages.
    pub pages: f64,
    /// L1 data-cache size in bytes.
    pub l1d_size: usize,
    /// L1 data-cache associativity (ways).
    pub l1d_assoc: usize,
    /// L1 data-cache block (line) size in bytes.
    pub l1d_block: usize,
    /// CPU cycles per reconfigurable-logic cycle (Figure 9's axis).
    pub logic_divisor: u64,
}

impl DseConfig {
    /// The full machine configuration this cell describes: the reference
    /// system with the overrides applied through the standard composable
    /// builders, in the canonical order (size, associativity, block,
    /// divisor). `apd`'s wire spec rebuilds configs through the same
    /// builders, so the `Debug` fingerprint — and therefore the engine
    /// cache key — is identical on every path.
    pub fn radram_config(&self) -> RadramConfig {
        RadramConfig::reference()
            .with_l1d_size(self.l1d_size)
            .with_l1d_assoc(self.l1d_assoc)
            .with_l1d_block(self.l1d_block)
            .with_logic_divisor(self.logic_divisor)
    }

    /// Logic-element bandwidth budget this config provisions, in LE·MHz:
    /// the per-page logic elements times the logic clock the divisor
    /// implies. Faster logic costs silicon and power, so the Pareto engine
    /// minimizes this axis.
    pub fn le_mhz(&self) -> f64 {
        let cfg = self.radram_config();
        f64::from(cfg.les_per_page) * cfg.logic_mhz()
    }

    /// Estimated processor-side cache area in bytes: data arrays plus eight
    /// bytes of tag/state per line, summed over L1I, L1D and L2. Only the
    /// L1D geometry varies in the stock grids, but all three caches are
    /// counted so the axis stays meaningful as the grid grows.
    pub fn area_bytes(&self) -> u64 {
        let cfg = self.radram_config();
        let h = &cfg.cpu.hierarchy;
        [&h.l1i, &h.l1d, &h.l2].iter().map(|c| (c.size + (c.size / c.line) * 8) as u64).sum()
    }

    /// Compact human-readable label for tables and logs.
    pub fn label(&self) -> String {
        format!(
            "{} p{} l1d {}K/{}w/{}B div {}",
            self.app.name(),
            self.pages,
            self.l1d_size >> 10,
            self.l1d_assoc,
            self.l1d_block,
            self.logic_divisor,
        )
    }
}

/// A declarative design-space grid: the cross product of its axes for every
/// kernel in `apps`, run on both memory systems.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Kernels swept.
    pub apps: Vec<App>,
    /// Problem sizes in Active Pages.
    pub pages: Axis<f64>,
    /// L1 data-cache sizes in bytes.
    pub l1d_sizes: Axis<usize>,
    /// L1 data-cache associativities.
    pub l1d_assocs: Axis<usize>,
    /// L1 data-cache block sizes in bytes.
    pub l1d_blocks: Axis<usize>,
    /// Logic-clock divisors.
    pub logic_divisors: Axis<u64>,
}

impl Grid {
    /// The full exploration grid: every kernel, a sub-page through
    /// multi-page size ladder, 3 × 4 × 2 L1D geometries and four logic
    /// clocks — 2 592 design points, 5 184 runs per tier. Sized so a
    /// fast-tier triage of the whole space is a coffee-break sweep, not an
    /// overnight one.
    pub fn full() -> Grid {
        Grid {
            apps: App::ALL.to_vec(),
            pages: Axis::new("pages", vec![0.5, 2.0, 8.0]),
            l1d_sizes: Axis::new("l1d_size", vec![16 << 10, 64 << 10, 256 << 10]),
            l1d_assocs: Axis::new("l1d_assoc", vec![1, 2, 4, 8]),
            l1d_blocks: Axis::new("l1d_block", vec![32, 64]),
            logic_divisors: Axis::new("logic_divisor", vec![2, 10, 50, 128]),
        }
    }

    /// The smoke grid CI sweeps twice per push: three kernels over a
    /// 2 × 2 × 2 × 2 corner of the space (24 design points, 48 runs per
    /// tier).
    pub fn quick() -> Grid {
        Grid {
            apps: vec![App::Database, App::Median, App::ArrayFind],
            pages: Axis::new("pages", vec![0.5, 2.0]),
            l1d_sizes: Axis::new("l1d_size", vec![16 << 10, 64 << 10]),
            l1d_assocs: Axis::new("l1d_assoc", vec![1, 2]),
            l1d_blocks: Axis::new("l1d_block", vec![32]),
            logic_divisors: Axis::new("logic_divisor", vec![2, 10]),
        }
    }

    /// [`Grid::quick`] when `quick`, [`Grid::full`] otherwise.
    pub fn for_quick(quick: bool) -> Grid {
        if quick {
            Grid::quick()
        } else {
            Grid::full()
        }
    }

    /// Number of design points the grid expands to.
    pub fn config_count(&self) -> usize {
        self.apps.len()
            * self.pages.len()
            * self.l1d_sizes.len()
            * self.l1d_assocs.len()
            * self.l1d_blocks.len()
            * self.logic_divisors.len()
    }

    /// Number of simulation runs one tier of the grid costs (two systems
    /// per design point).
    pub fn run_count(&self) -> usize {
        2 * self.config_count()
    }

    /// How many survivors the successive-halving refiner promotes to the
    /// accurate tier: 1/32 of the grid, clamped to [8, 64]. The Pareto
    /// front itself is always promoted whole, even past this budget.
    pub fn promote_budget(&self) -> usize {
        (self.config_count() / 32).clamp(8, 64)
    }

    /// Expands the grid in canonical order: app-major, then pages, L1D
    /// size, associativity, block, logic divisor. Every front end relies on
    /// this order — config indices double as stable point ids.
    pub fn configs(&self) -> Vec<DseConfig> {
        let mut out = Vec::with_capacity(self.config_count());
        for &app in &self.apps {
            for &pages in &self.pages.values {
                for &l1d_size in &self.l1d_sizes.values {
                    for &l1d_assoc in &self.l1d_assocs.values {
                        for &l1d_block in &self.l1d_blocks.values {
                            for &logic_divisor in &self.logic_divisors.values {
                                out.push(DseConfig {
                                    app,
                                    pages,
                                    l1d_size,
                                    l1d_assoc,
                                    l1d_block,
                                    logic_divisor,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// One-line description of the axes for reports and logs.
    pub fn describe(&self) -> String {
        format!(
            "{} apps x {} pages x {} l1d sizes x {} assocs x {} blocks x {} divisors \
             = {} configs ({} runs/tier)",
            self.apps.len(),
            self.pages.len(),
            self.l1d_sizes.len(),
            self.l1d_assocs.len(),
            self.l1d_blocks.len(),
            self.logic_divisors.len(),
            self.config_count(),
            self.run_count(),
        )
    }
}

/// One simulation run of a design point: a [`DseConfig`] pinned to one
/// memory system and execution tier, with the expanded [`RadramConfig`].
#[derive(Debug, Clone)]
pub struct DseSpec {
    /// Index of the originating config in the expansion order passed to
    /// [`expand`] — the id the [`crate::collect::Collector`] folds by.
    pub config_index: usize,
    /// Application kernel.
    pub app: App,
    /// Which memory system.
    pub kind: SystemKind,
    /// Problem size in Active Pages.
    pub pages: f64,
    /// Full machine configuration (see [`DseConfig::radram_config`]).
    pub cfg: RadramConfig,
    /// Execution tier.
    pub mode: ExecMode,
}

/// Expands configs to runs in canonical order: two specs per config,
/// conventional before RADram, on the given execution tier.
pub fn expand(configs: &[DseConfig], mode: ExecMode) -> Vec<DseSpec> {
    let mut specs = Vec::with_capacity(2 * configs.len());
    for (config_index, c) in configs.iter().enumerate() {
        let cfg = c.radram_config();
        for kind in [SystemKind::Conventional, SystemKind::Radram] {
            specs.push(DseSpec {
                config_index,
                app: c.app,
                kind,
                pages: c.pages,
                cfg: cfg.clone(),
                mode,
            });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_sweeps_at_least_two_thousand_runs() {
        let grid = Grid::full();
        assert_eq!(grid.configs().len(), grid.config_count());
        assert!(grid.config_count() >= 2000, "got {}", grid.config_count());
        assert!(grid.run_count() >= 2000, "got {}", grid.run_count());
        assert!(grid.quick_is_smaller());
    }

    impl Grid {
        fn quick_is_smaller(&self) -> bool {
            Grid::quick().run_count() < self.run_count()
        }
    }

    #[test]
    fn quick_grid_is_ci_sized() {
        let grid = Grid::quick();
        assert!(grid.run_count() <= 128, "got {}", grid.run_count());
        assert!(grid.promote_budget() >= 8);
    }

    #[test]
    fn configs_expand_in_canonical_order_with_stable_ids() {
        let grid = Grid::quick();
        let configs = grid.configs();
        assert_eq!(configs, grid.configs(), "expansion must be deterministic");
        let specs = expand(&configs, ExecMode::Fast);
        assert_eq!(specs.len(), grid.run_count());
        for (i, pair) in specs.chunks(2).enumerate() {
            assert_eq!(pair[0].config_index, i);
            assert_eq!(pair[1].config_index, i);
            assert_eq!(pair[0].kind, SystemKind::Conventional);
            assert_eq!(pair[1].kind, SystemKind::Radram);
            assert_eq!(pair[0].cfg, pair[1].cfg);
        }
    }

    #[test]
    fn config_builders_compose_into_the_machine_config() {
        let c = DseConfig {
            app: App::Database,
            pages: 2.0,
            l1d_size: 16 << 10,
            l1d_assoc: 4,
            l1d_block: 64,
            logic_divisor: 50,
        };
        let cfg = c.radram_config();
        assert_eq!(cfg.cpu.hierarchy.l1d.size, 16 << 10);
        assert_eq!(cfg.cpu.hierarchy.l1d.assoc, 4);
        assert_eq!(cfg.cpu.hierarchy.l1d.line, 64);
        assert_eq!(cfg.logic_divisor, 50);
        // Untouched axes stay at reference values.
        assert_eq!(cfg.cpu.hierarchy.l2.size, 1 << 20);
    }

    #[test]
    fn objective_axes_track_the_knobs() {
        let base = DseConfig {
            app: App::Median,
            pages: 0.5,
            l1d_size: 64 << 10,
            l1d_assoc: 2,
            l1d_block: 32,
            logic_divisor: 10,
        };
        let fast_logic = DseConfig { logic_divisor: 2, ..base.clone() };
        assert!(fast_logic.le_mhz() > base.le_mhz(), "faster logic costs more LE-MHz");
        let big_cache = DseConfig { l1d_size: 256 << 10, ..base.clone() };
        assert!(big_cache.area_bytes() > base.area_bytes());
        let wide_lines = DseConfig { l1d_block: 64, ..base.clone() };
        assert!(wide_lines.area_bytes() < base.area_bytes(), "fewer lines, less tag overhead");
        assert!(base.label().contains("median"), "{}", base.label());
    }

    #[test]
    fn every_grid_geometry_is_a_legal_cache_shape() {
        // sets = size / (assoc * line) must stay a power of two for the
        // set-index arithmetic in both the oracle and the fast tier.
        for grid in [Grid::full(), Grid::quick()] {
            for &size in &grid.l1d_sizes.values {
                for &assoc in &grid.l1d_assocs.values {
                    for &line in &grid.l1d_blocks.values {
                        let sets = size / (assoc * line);
                        assert!(sets.is_power_of_two() && sets >= 1, "{size}/{assoc}/{line}");
                        // L2 lines must not be narrower than L1 lines.
                        assert!(line <= 64, "{line}");
                    }
                }
            }
        }
    }
}
