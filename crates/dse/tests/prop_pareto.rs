//! Property tests for the Pareto engine: for arbitrary point clouds the
//! front must be minimal and complete, input-order-invariant, and never
//! cut by the successive-halving refiner.

use ap_dse::pareto::{dominates, front, successive_halving, ParetoPoint, OBJECTIVES};
use proptest::prelude::*;

/// Deterministic pseudo-random point cloud: `n` points with 3 objective
/// values each, derived from `seed` with an LCG. Coordinates are quantized
/// to a coarse lattice so ties and dominance chains actually occur.
fn cloud(seed: u64, n: usize) -> Vec<ParetoPoint> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % 8
    };
    (0..n)
        .map(|id| ParetoPoint::new(id, vec![next() as f64, next() as f64, next() as f64]))
        .collect()
}

/// Deterministically shuffles `points` by sorting on a seed-keyed hash of
/// each id.
fn shuffled(points: &[ParetoPoint], seed: u64) -> Vec<ParetoPoint> {
    let mut out = points.to_vec();
    out.sort_by_key(|p| (p.id as u64 ^ seed).wrapping_mul(0x9e3779b97f4a7c15));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No point on the front is dominated by any point in the cloud.
    #[test]
    fn front_points_are_never_dominated(seed in 0u64..10_000, n in 1usize..40) {
        let pts = cloud(seed, n);
        let f = front(&pts, &OBJECTIVES);
        prop_assert!(!f.is_empty(), "a non-empty cloud always has a front");
        for &id in &f {
            let p = pts.iter().find(|p| p.id == id).expect("front id exists");
            for q in &pts {
                prop_assert!(!dominates(q, p, &OBJECTIVES),
                    "front point {id} is dominated by {}", q.id);
            }
        }
        // Completeness: every non-front point IS dominated by someone.
        for p in &pts {
            if !f.contains(&p.id) {
                prop_assert!(pts.iter().any(|q| dominates(q, p, &OBJECTIVES)),
                    "non-front point {} is dominated by nobody", p.id);
            }
        }
    }

    /// The front is a function of the point *set*: shuffling the input
    /// changes nothing.
    #[test]
    fn front_is_invariant_under_shuffling(seed in 0u64..10_000, n in 1usize..40, perm in 1u64..50) {
        let pts = cloud(seed, n);
        let baseline = front(&pts, &OBJECTIVES);
        prop_assert_eq!(front(&shuffled(&pts, perm), &OBJECTIVES), baseline);
    }

    /// Successive halving never drops a point that was on the triage-tier
    /// front, no matter how small the promotion budget.
    #[test]
    fn halving_never_cuts_a_front_point(seed in 0u64..10_000, n in 1usize..40, budget in 1usize..20) {
        let pts = cloud(seed, n);
        let f = front(&pts, &OBJECTIVES);
        let h = successive_halving(&pts, &OBJECTIVES, budget);
        for id in &f {
            prop_assert!(h.survivors.contains(id),
                "front point {} was cut by halving with budget {budget}", id);
        }
        prop_assert!(h.survivors.len() <= budget.max(f.len()));
        prop_assert_eq!(*h.rungs.first().unwrap(), n);
        // Survivors are also shuffle-invariant.
        let h2 = successive_halving(&shuffled(&pts, seed | 1), &OBJECTIVES, budget);
        prop_assert_eq!(h2.survivors, h.survivors);
    }
}
