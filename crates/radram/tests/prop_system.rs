//! Property tests of the RADram system engine: arbitrary interleavings of
//! stores, activations, polls and waits must preserve the simulator's core
//! invariants — time is monotone, results are exact, accounting balances.

use active_pages::{sync, ActivePageMemory, Execution, GroupId, PageFunction, PageSlice};
use ap_mem::VAddr;
use proptest::prelude::*;
use radram::{CommMode, RadramConfig, System};
use std::sync::Arc;

/// Adds `PARAM` to every one of the first 64 body words and publishes their
/// sum; cost is one word per logic cycle.
#[derive(Debug)]
struct AddAndSum;

impl PageFunction for AddAndSum {
    fn name(&self) -> &'static str {
        "add-and-sum"
    }
    fn logic_elements(&self) -> u32 {
        96
    }
    fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
        let delta = page.ctrl(sync::PARAM);
        let mut sum = 0u32;
        for w in 0..64 {
            let off = sync::BODY_OFFSET + 4 * w;
            let v = page.read_u32(off).wrapping_add(delta);
            page.write_u32(off, v);
            sum = sum.wrapping_add(v);
        }
        page.set_ctrl(sync::RESULT, sum);
        page.set_ctrl(sync::STATUS, sync::DONE);
        Execution::run(64)
    }
}

/// One step of a random driver program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Store { page: u8, word: u8, value: u32 },
    Activate { page: u8, delta: u32 },
    Poll { page: u8 },
    Wait { page: u8 },
    Compute { n: u16 },
}

fn arb_op(pages: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages, 0u8..64, any::<u32>()).prop_map(|(page, word, value)| Op::Store {
            page,
            word,
            value
        }),
        (0..pages, 0u32..100).prop_map(|(page, delta)| Op::Activate { page, delta }),
        (0..pages).prop_map(|page| Op::Poll { page }),
        (0..pages).prop_map(|page| Op::Wait { page }),
        (1u16..500).prop_map(|n| Op::Compute { n }),
    ]
}

/// A shadow model of the page contents (pure software).
fn run_program(ops: &[Op], pages: u8, comm: CommMode) -> (System, Vec<[u32; 64]>) {
    let cfg = RadramConfig::reference()
        .with_ram_capacity(((pages as usize) + 4) << 19)
        .with_comm_mode(comm);
    let mut sys = System::radram(cfg);
    let g = GroupId::new(0);
    let base = sys.ap_alloc_pages(g, pages as usize);
    sys.ap_bind(g, Arc::new(AddAndSum));
    let mut shadow = vec![[0u32; 64]; pages as usize];
    let page_base = |p: u8| -> VAddr { base + (p as usize * active_pages::PAGE_SIZE) as u64 };
    let mut last_now = sys.now();
    for &op in ops {
        match op {
            Op::Store { page, word, value } => {
                sys.store_u32(
                    page_base(page) + (sync::BODY_OFFSET + 4 * word as usize) as u64,
                    value,
                );
                shadow[page as usize][word as usize] = value;
            }
            Op::Activate { page, delta } => {
                sys.write_ctrl(page_base(page), sync::PARAM, delta);
                sys.activate(page_base(page), 1);
                for w in shadow[page as usize].iter_mut() {
                    *w = w.wrapping_add(delta);
                }
            }
            Op::Poll { page } => {
                let _ = sys.poll_status(page_base(page));
            }
            Op::Wait { page } => {
                sys.wait_done(page_base(page));
            }
            Op::Compute { n } => sys.alu(n as u64),
        }
        assert!(sys.now() >= last_now, "time went backwards");
        last_now = sys.now();
    }
    // Quiesce.
    for p in 0..pages {
        sys.wait_done(page_base(p));
    }
    (sys, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving terminates, keeps time monotone, and leaves page
    /// contents exactly matching the software shadow model.
    #[test]
    fn interleavings_match_shadow_model(
        ops in proptest::collection::vec(arb_op(3), 1..60),
        hardware in proptest::bool::ANY,
    ) {
        let comm = if hardware { CommMode::HardwareCopy } else { CommMode::ProcessorMediated };
        let (mut sys, shadow) = run_program(&ops, 3, comm);
        for (p, page_shadow) in shadow.iter().enumerate() {
            let base = sys.group_page_base(GroupId::new(0), p);
            for (w, &want) in page_shadow.iter().enumerate() {
                let got = sys.load_u32(base + (sync::BODY_OFFSET + 4 * w) as u64);
                prop_assert_eq!(got, want, "page {} word {}", p, w);
            }
        }
    }

    /// Accounting balances: stalls never exceed elapsed time, logic-busy
    /// time never exceeds activations x per-activation cost, and every
    /// activation was counted.
    #[test]
    fn accounting_invariants(ops in proptest::collection::vec(arb_op(3), 1..60)) {
        let activations = ops.iter().filter(|o| matches!(o, Op::Activate { .. })).count() as u64;
        let (sys, _) = run_program(&ops, 3, CommMode::ProcessorMediated);
        let st = sys.stats();
        prop_assert_eq!(st.activations, activations);
        prop_assert!(st.non_overlap_cycles <= st.cpu.cycles);
        prop_assert_eq!(st.logic_busy_cycles, activations * 64 * 10);
        prop_assert_eq!(st.rebinds, 0);
    }

    /// Results published in RESULT always equal the shadow sum at the time
    /// of the last activation of that page.
    #[test]
    fn results_are_exact(deltas in proptest::collection::vec(1u32..50, 1..8)) {
        let cfg = RadramConfig::reference().with_ram_capacity(8 << 20);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, 1);
        sys.ap_bind(g, Arc::new(AddAndSum));
        let mut shadow = [0u32; 64];
        for delta in deltas {
            sys.write_ctrl(base, sync::PARAM, delta);
            sys.activate(base, 1);
            sys.wait_done(base);
            for w in shadow.iter_mut() {
                *w = w.wrapping_add(delta);
            }
            let want: u32 = shadow.iter().fold(0u32, |a, &v| a.wrapping_add(v));
            prop_assert_eq!(sys.read_ctrl(base, sync::RESULT), want);
        }
    }
}
