//! RADram system parameters (paper, Table 1).

use ap_cpu::CpuConfig;
use ap_mem::CacheConfig;

/// How inter-page memory references are satisfied.
///
/// The paper's reference design is processor-mediated ("it blocks and raises
/// a processor interrupt"); Section 10 lists dedicated in-chip hardware as
/// future work, modeled here as [`CommMode::HardwareCopy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// The processor services blocked pages (the paper's design).
    #[default]
    ProcessorMediated,
    /// An in-chip network moves one 32-bit word per logic cycle between
    /// subarrays with no processor involvement (Section 10 extension).
    HardwareCopy,
}

/// How the processor learns about raised inter-page requests.
///
/// Section 3 mentions "processor-polling for requests" as an alternative to
/// interrupts, to be evaluated in future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceMode {
    /// Asynchronous interrupts with trap overhead (the paper's design).
    #[default]
    Interrupt,
    /// The processor discovers requests on its next synchronization-variable
    /// access; no trap overhead, one extra uncached probe per batch.
    Polling,
}

/// Parameters of a RADram system.
///
/// The reference values reproduce Table 1: a 1 GHz processor with 64 KB split
/// L1 caches and a 1 MB L2, 50 ns cache-miss latency, and 100 MHz
/// reconfigurable logic (a logic divisor of 10). The sensitivity studies
/// vary `logic_divisor` (Figure 9, 10–500 MHz) and the DRAM miss latency
/// (Figure 8, 0–600 ns).
///
/// # Examples
///
/// ```
/// use radram::RadramConfig;
///
/// let cfg = RadramConfig::reference();
/// assert_eq!(cfg.logic_divisor, 10);
/// assert_eq!(cfg.les_per_page, 256);
///
/// let slow_logic = RadramConfig::reference().with_logic_divisor(100); // 10 MHz
/// assert_eq!(slow_logic.logic_divisor, 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadramConfig {
    /// Processor and cache-hierarchy parameters.
    pub cpu: CpuConfig,
    /// Simulated physical memory capacity in bytes.
    pub ram_capacity: usize,
    /// CPU cycles per reconfigurable-logic cycle (10 ⇒ 100 MHz at 1 GHz).
    pub logic_divisor: u64,
    /// Logic elements available to each 512 KB subarray.
    pub les_per_page: u32,
    /// Processor cycles of runtime dispatch charged per activation (driver
    /// call, parameter marshalling) in addition to the memory-mapped stores
    /// the application performs itself.
    pub activation_overhead: u64,
    /// Processor cycles to take one inter-page interrupt (trap + handler
    /// entry); individual copies are charged through the caches on top.
    pub interrupt_overhead: u64,
    /// Processor cycles per page to reconfigure logic when `AP_bind`
    /// replaces an existing binding.
    pub rebind_cost: u64,
    /// How inter-page references are satisfied.
    pub comm: CommMode,
    /// How raised requests reach the processor.
    pub service: ServiceMode,
    /// Outstanding inter-page references a page can expose per interrupt;
    /// more references than this need additional service round trips
    /// (the paper's reference design supports one).
    pub outstanding_refs: usize,
}

impl RadramConfig {
    /// The paper's reference system.
    pub fn reference() -> Self {
        RadramConfig {
            cpu: CpuConfig::reference(),
            ram_capacity: 256 << 20,
            logic_divisor: 10,
            les_per_page: 256,
            activation_overhead: 200,
            interrupt_overhead: 500,
            rebind_cost: 100_000,
            comm: CommMode::ProcessorMediated,
            service: ServiceMode::Interrupt,
            outstanding_refs: 1,
        }
    }

    /// Reference system with a different logic-clock divisor (Figure 9).
    pub fn with_logic_divisor(mut self, divisor: u64) -> Self {
        assert!(divisor > 0, "logic divisor must be positive");
        self.logic_divisor = divisor;
        self
    }

    /// Same system with a different DRAM miss latency in ns (Figure 8).
    /// Composes: earlier cache overrides are preserved.
    pub fn with_miss_latency(mut self, latency: u64) -> Self {
        self.cpu.hierarchy.dram.latency = latency;
        self
    }

    /// Same system with a different L1 data-cache size (Figure 5).
    /// Composes: other hierarchy overrides are preserved.
    pub fn with_l1d_size(mut self, size: usize) -> Self {
        self.cpu.hierarchy.l1d = Self::revalidate(&self.cpu.hierarchy.l1d, size, None, None);
        self
    }

    /// Same system with a different L1 data-cache associativity (the DSE
    /// grid's ways axis). Composes with the other L1D builders.
    pub fn with_l1d_assoc(mut self, assoc: usize) -> Self {
        self.cpu.hierarchy.l1d = Self::revalidate(&self.cpu.hierarchy.l1d, 0, Some(assoc), None);
        self
    }

    /// Same system with a different L1 data-cache block (line) size.
    /// Composes with the other L1D builders.
    ///
    /// # Panics
    ///
    /// Panics if the block is wider than the L2 line — an L2 fill could no
    /// longer satisfy a whole L1 line.
    pub fn with_l1d_block(mut self, block: usize) -> Self {
        assert!(
            block <= self.cpu.hierarchy.l2.line,
            "L1D block ({block} B) must not exceed the L2 line ({} B)",
            self.cpu.hierarchy.l2.line
        );
        self.cpu.hierarchy.l1d = Self::revalidate(&self.cpu.hierarchy.l1d, 0, None, Some(block));
        self
    }

    /// Same system with a different L2 size (Figure 5 discussion).
    /// Composes: other hierarchy overrides are preserved.
    pub fn with_l2_size(mut self, size: usize) -> Self {
        self.cpu.hierarchy.l2 = Self::revalidate(&self.cpu.hierarchy.l2, size, None, None);
        self
    }

    /// Rebuilds a cache config through [`CacheConfig::new`] so every
    /// override re-runs the geometry assertions (powers of two, at least
    /// one set). A `size` of 0 keeps the current size.
    fn revalidate(
        cur: &CacheConfig,
        size: usize,
        assoc: Option<usize>,
        line: Option<usize>,
    ) -> CacheConfig {
        CacheConfig::new(
            cur.name,
            if size == 0 { cur.size } else { size },
            assoc.unwrap_or(cur.assoc),
            line.unwrap_or(cur.line),
            cur.hit_latency,
        )
    }

    /// Reference system with a different simulated memory capacity.
    pub fn with_ram_capacity(mut self, bytes: usize) -> Self {
        self.ram_capacity = bytes;
        self
    }

    /// Reference system with a different inter-page communication mode
    /// (Section 10 ablation).
    pub fn with_comm_mode(mut self, comm: CommMode) -> Self {
        self.comm = comm;
        self
    }

    /// Reference system with a different request-service mode.
    pub fn with_service_mode(mut self, service: ServiceMode) -> Self {
        self.service = service;
        self
    }

    /// Reference system supporting `refs` outstanding references per page.
    ///
    /// # Panics
    ///
    /// Panics if `refs` is zero.
    pub fn with_outstanding_refs(mut self, refs: usize) -> Self {
        assert!(refs > 0, "at least one outstanding reference is required");
        self.outstanding_refs = refs;
        self
    }

    /// Reconfigurable-logic clock in MHz implied by the divisor (the CPU
    /// runs at 1 GHz).
    pub fn logic_mhz(&self) -> f64 {
        1000.0 / self.logic_divisor as f64
    }
}

impl Default for RadramConfig {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_table_1() {
        let cfg = RadramConfig::reference();
        assert_eq!(cfg.cpu.hierarchy.l1d.size, 64 * 1024);
        assert_eq!(cfg.cpu.hierarchy.l2.size, 1024 * 1024);
        assert_eq!(cfg.cpu.hierarchy.dram.latency, 50);
        assert!((cfg.logic_mhz() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn builders_compose() {
        let cfg = RadramConfig::reference().with_miss_latency(600).with_logic_divisor(2);
        assert_eq!(cfg.cpu.hierarchy.dram.latency, 600);
        assert!((cfg.logic_mhz() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchy_builders_compose_without_resetting_each_other() {
        let cfg = RadramConfig::reference()
            .with_l1d_size(16 * 1024)
            .with_l1d_assoc(4)
            .with_l1d_block(64)
            .with_l2_size(2 * 1024 * 1024)
            .with_miss_latency(600);
        assert_eq!(cfg.cpu.hierarchy.l1d.size, 16 * 1024, "size survives later overrides");
        assert_eq!(cfg.cpu.hierarchy.l1d.assoc, 4);
        assert_eq!(cfg.cpu.hierarchy.l1d.line, 64);
        assert_eq!(cfg.cpu.hierarchy.l2.size, 2 * 1024 * 1024);
        assert_eq!(cfg.cpu.hierarchy.dram.latency, 600);
        // Untouched knobs keep reference values.
        assert_eq!(cfg.cpu.hierarchy.l1i.size, 64 * 1024);
        assert_eq!(cfg.cpu.hierarchy.l2.line, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn illegal_cache_geometry_is_rejected_at_override_time() {
        let _ = RadramConfig::reference().with_l1d_size(48 * 1024);
    }

    #[test]
    #[should_panic(expected = "must not exceed the L2 line")]
    fn l1d_block_wider_than_l2_line_is_rejected() {
        let _ = RadramConfig::reference().with_l1d_block(128);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_divisor_rejected() {
        let _ = RadramConfig::reference().with_logic_divisor(0);
    }
}
