//! The full-system simulator: processor + caches + (optionally) RADram.

use crate::config::RadramConfig;
use crate::state::{BlockedExec, PageState};
use crate::stats::SystemStats;
use active_pages::{
    sync, ActivePageMemory, Execution, GroupId, PageFunction, PageId, PageInfo, PageSlice,
    PAGE_SIZE,
};
use ap_cpu::mmx::MmxOp;
use ap_cpu::{Cpu, ExecMode};
use ap_lint::footprint::{self as footprint, PageFootprint, StaticFootprint};
use ap_lint::Report;
use ap_mem::{AccessTap, VAddr};
use ap_trace::Subsystem::Radram as TRACE_RAD;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const PAGE_SHIFT: u32 = 19; // 512 KB pages
const PAGE_MASK: u64 = PAGE_SIZE as u64 - 1;

/// Process-wide override forcing the sequential activation path.
static FORCE_SEQUENTIAL: AtomicBool = AtomicBool::new(false);

/// Forces every [`System`] in this process onto the sequential activation
/// path (the determinism oracle for [`System::activate_pages`]). Parallel
/// and sequential schedules produce bit-identical simulation results, so
/// this only changes host wall-clock; it is safe to toggle globally.
pub fn set_force_sequential(on: bool) {
    FORCE_SEQUENTIAL.store(on, Ordering::Relaxed);
}

/// True when [`set_force_sequential`] (or the `AP_SEQUENTIAL` environment
/// variable at `System` construction) disabled parallel page execution.
pub fn force_sequential() -> bool {
    FORCE_SEQUENTIAL.load(Ordering::Relaxed)
}

/// Process-wide override enabling the dynamic access sanitizer.
static FORCE_SANITIZE: AtomicBool = AtomicBool::new(false);

/// Turns the dynamic access sanitizer on for every [`System`] in this
/// process (equivalent to constructing under `AP_SANITIZE=1`). Sanitized
/// batches record every byte each page function touches plus the
/// processor's cached traffic, and cross-check them (RC204/RC205); results
/// and simulated timing are unchanged — only host wall-clock grows.
pub fn set_force_sanitize(on: bool) {
    FORCE_SANITIZE.store(on, Ordering::Relaxed);
}

/// True when [`set_force_sanitize`] enabled the sanitizer process-wide.
pub fn force_sanitize() -> bool {
    FORCE_SANITIZE.load(Ordering::Relaxed)
}

/// Counters describing how the parallel executor classified its batches.
///
/// These are host-side audit numbers, not simulation state: a sequential
/// run never classifies batches, so they differ between bit-identical
/// parallel and sequential runs and deliberately stay out of
/// [`SystemStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceAudit {
    /// Batches whose member footprints were all statically proven
    /// page-local (sanitizer recording skipped).
    pub proven_batches: u64,
    /// Batches with at least one unknown or escaping footprint (runtime
    /// fallbacks kept; sanitized when the sanitizer is on).
    pub unknown_batches: u64,
    /// Batches sent to the sequential path because their declared write
    /// footprints statically overlap (RC202).
    pub overlap_rejects: u64,
}

/// One page's share of a batched group activation: optional parameter-word
/// writes followed by a command-word store (see
/// [`System::activate_pages`]).
#[derive(Debug, Clone)]
pub struct PageActivation {
    /// Base address of the target page.
    pub page_base: VAddr,
    /// `(control word, value)` pairs written before the command store.
    pub params: Vec<(usize, u32)>,
    /// Value stored to [`sync::CMD`].
    pub cmd: u32,
}

impl PageActivation {
    /// An activation with no parameter writes.
    pub fn new(page_base: VAddr, cmd: u32) -> Self {
        PageActivation { page_base, params: Vec::new(), cmd }
    }

    /// Builder: prepend a control-word write to the command store.
    pub fn with_param(mut self, word: usize, v: u32) -> Self {
        self.params.push((word, v));
        self
    }
}

/// A page execution deferred by the batched activation path: all of its
/// processor-visible bookkeeping (clock, counters, dispatch events, cache
/// invalidation) already happened at the sequential instants; only the
/// functional `execute` and its timeline merge remain.
#[derive(Debug)]
struct DeferredExec {
    pid: u32,
    info: PageInfo,
    func: Arc<dyn PageFunction>,
    /// Logic start time recorded at dispatch (execution never advances the
    /// processor clock, so this equals the sequential schedule start).
    start: u64,
    /// The triggering store's suppressed `ctrl.write` span, re-emitted after
    /// this page's `page.run` spans so per-page ring order matches the
    /// sequential trace byte for byte.
    ctrl_event: Option<ap_trace::Event>,
}

/// In-flight state of one [`System::activate_pages`] batch.
#[derive(Debug, Default)]
struct BatchState {
    deferred: Vec<DeferredExec>,
    deferred_pids: HashSet<u32>,
    /// Record per-page access logs and cross-check them when the batch
    /// completes (set when the sanitizer is on).
    sanitize: bool,
}

impl BatchState {
    /// Empties the state while keeping its allocations, ready for reuse by
    /// the next batch.
    fn recycled(mut self) -> Self {
        self.deferred.clear();
        self.deferred_pids.clear();
        self.sanitize = false;
        self
    }
}

#[derive(Debug, Default)]
struct Counters {
    non_overlap: u64,
    activations: u64,
    interrupt_batches: u64,
    interpage_copies: u64,
    copied_bytes: u64,
    rebinds: u64,
    logic_busy: u64,
}

#[derive(Debug)]
struct Rad {
    table: active_pages::PageTable,
    pages: Vec<PageState>,
    frames: Vec<Option<u32>>,
    /// Page ids blocked on an inter-page reference, in raise order.
    pending: Vec<u32>,
    /// Reusable ready-list buffer for [`System::service_raised`] (avoids a
    /// fresh allocation on this hot path every service call).
    scratch: Vec<u32>,
    counters: Counters,
}

/// A simulated uniprocessor workstation with either a conventional memory
/// system or a RADram Active-Page memory system.
///
/// Applications drive the system through instrumented operations (loads,
/// stores, ALU/FP work, branches); the Active-Page interface of the paper is
/// available through [`System::ap_alloc`], [`System::ap_bind`] and ordinary
/// stores to per-page synchronization variables ([`System::activate`],
/// [`System::wait_done`] are thin helpers over those stores and loads).
///
/// See the crate-level example for an end-to-end activation.
#[derive(Debug)]
pub struct System {
    cpu: Cpu,
    cfg: RadramConfig,
    rad: Option<Rad>,
    /// Per-instance sequential override (seeded from `AP_SEQUENTIAL`).
    sequential: bool,
    /// Per-instance sanitizer switch (seeded from `AP_SANITIZE`).
    sanitize: bool,
    /// Race diagnostics accumulated by the sanitizer and the static batch
    /// check (RC202/RC204/RC205).
    race: Report,
    /// Batch-classification counters (see [`RaceAudit`]).
    audit: RaceAudit,
    /// Deferral state while a batched activation is in flight.
    batch: Option<BatchState>,
    /// The previous batch's emptied state, kept so its `deferred` /
    /// `deferred_pids` allocations are reused instead of reallocated on
    /// every activation (million-batch runs churn otherwise).
    batch_spare: Option<BatchState>,
    /// Host timestamp of the open kernel region ([`System::kernel_start`]).
    kernel_t0: Option<std::time::Instant>,
}

/// True when environment variable `name` is set to anything non-empty other
/// than `0` (the shared boolean-flag convention: `AP_SEQUENTIAL`,
/// `AP_SANITIZE`).
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// True when `AP_SEQUENTIAL` asks for the sequential activation path.
fn env_sequential() -> bool {
    env_flag("AP_SEQUENTIAL")
}

/// True when `AP_SANITIZE` asks for the dynamic access sanitizer.
fn env_sanitize() -> bool {
    env_flag("AP_SANITIZE")
}

impl System {
    /// Creates a system with a conventional memory system (the baseline in
    /// every experiment) and the reference configuration.
    pub fn conventional() -> Self {
        Self::conventional_with(RadramConfig::reference())
    }

    /// Creates a conventional-memory system with custom parameters (cache
    /// sizes, DRAM latency); Active-Page calls panic on this system.
    pub fn conventional_with(cfg: RadramConfig) -> Self {
        Self::conventional_mode(cfg, ExecMode::Accurate)
    }

    /// Creates a conventional-memory system on the execution tier `mode`
    /// selects (see [`ExecMode`]; fast estimates cycles instead of modeling
    /// every access).
    pub fn conventional_mode(cfg: RadramConfig, mode: ExecMode) -> Self {
        System {
            cpu: Cpu::with_mode(cfg.cpu.clone(), cfg.ram_capacity, mode),
            cfg,
            rad: None,
            sequential: env_sequential(),
            sanitize: env_sanitize(),
            race: Report::new("ap-race"),
            audit: RaceAudit::default(),
            batch: None,
            batch_spare: None,
            kernel_t0: None,
        }
    }

    /// Creates a system whose memory implements Active Pages on RADram.
    pub fn radram(cfg: RadramConfig) -> Self {
        Self::radram_mode(cfg, ExecMode::Accurate)
    }

    /// Creates an Active-Page system on the execution tier `mode` selects.
    pub fn radram_mode(cfg: RadramConfig, mode: ExecMode) -> Self {
        let frames = cfg.ram_capacity >> PAGE_SHIFT;
        System {
            cpu: Cpu::with_mode(cfg.cpu.clone(), cfg.ram_capacity, mode),
            rad: Some(Rad {
                table: active_pages::PageTable::new(),
                pages: Vec::new(),
                frames: vec![None; frames],
                pending: Vec::new(),
                scratch: Vec::new(),
                counters: Counters::default(),
            }),
            cfg,
            sequential: env_sequential(),
            sanitize: env_sanitize(),
            race: Report::new("ap-race"),
            audit: RaceAudit::default(),
            batch: None,
            batch_spare: None,
            kernel_t0: None,
        }
    }

    /// Pins this instance to the sequential activation path (or releases
    /// it). Parallel and sequential runs are bit-identical in simulation
    /// terms; this switch exists as the determinism oracle and for
    /// single-core hosts.
    pub fn set_sequential(&mut self, on: bool) {
        self.sequential = on;
    }

    /// Turns the dynamic access sanitizer on (or off) for this instance
    /// (see [`set_force_sanitize`] for the process-wide switch and
    /// `AP_SANITIZE` for the environment seed).
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// The race diagnostics (RC202/RC204/RC205) accumulated so far.
    pub fn race_report(&self) -> &Report {
        &self.race
    }

    /// How the parallel executor classified its batches so far.
    pub fn race_audit(&self) -> RaceAudit {
        self.audit
    }

    /// Returns the system configuration.
    pub fn config(&self) -> &RadramConfig {
        &self.cfg
    }

    /// True when the memory system implements Active Pages.
    pub fn is_radram(&self) -> bool {
        self.rad.is_some()
    }

    /// Which execution tier this system runs on.
    pub fn mode(&self) -> ExecMode {
        self.cpu.mode()
    }

    /// Current simulated time in CPU cycles (1 ns at the 1 GHz reference).
    #[inline]
    pub fn now(&self) -> u64 {
        self.cpu.now()
    }

    /// Marks the start of a kernel region: stamps a host wall-clock
    /// timestamp (drained by [`crate::take_kernel_host_secs`] when the
    /// matching [`System::kernel_region`] closes it) and returns the current
    /// simulated time, so apps can write `let t0 = sys.kernel_start();`
    /// where they previously sampled [`System::now`].
    pub fn kernel_start(&mut self) -> u64 {
        self.kernel_t0 = Some(std::time::Instant::now());
        self.cpu.now()
    }

    /// Cycles elapsed since `t0`, emitted as a traced `kernel.region` span.
    /// Apps call this exactly where they measure their kernel region, so an
    /// exported timeline carries the same envelope the aggregate
    /// `kernel_cycles` counter reports (the event stream alone undercounts
    /// by whatever trailing work emits no event). Closes the host-time
    /// window an earlier [`System::kernel_start`] opened; simulated results
    /// are unaffected.
    pub fn kernel_region(&mut self, t0: u64) -> u64 {
        if let Some(start) = self.kernel_t0.take() {
            crate::hosttime::add_kernel_secs(start.elapsed().as_secs_f64());
        }
        let kernel = self.cpu.now() - t0;
        ap_trace::complete(TRACE_RAD, "kernel.region", t0, kernel, 0, 0);
        kernel
    }

    /// Cumulative processor-memory non-overlap stall cycles so far (zero on
    /// a conventional system). Cheap accessor for phase accounting.
    #[inline]
    pub fn non_overlap_cycles(&self) -> u64 {
        self.rad.as_ref().map_or(0, |r| r.counters.non_overlap)
    }

    /// Allocates ordinary (non-Active-Page) memory.
    pub fn ram_alloc(&mut self, len: usize, align: u64) -> VAddr {
        self.cpu.ram.alloc(len, align)
    }

    /// Whole-run statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        let mut s = SystemStats { cpu: self.cpu.stats(), ..SystemStats::default() };
        if let Some(rad) = &self.rad {
            s.non_overlap_cycles = rad.counters.non_overlap;
            s.activations = rad.counters.activations;
            s.interrupt_batches = rad.counters.interrupt_batches;
            s.interpage_copies = rad.counters.interpage_copies;
            s.copied_bytes = rad.counters.copied_bytes;
            s.rebinds = rad.counters.rebinds;
            s.logic_busy_cycles = rad.counters.logic_busy;
        }
        s.race_errors = self.race.errors() as u64;
        s.race_warnings = self.race.warnings() as u64;
        s
    }

    // ---- processor compute operations (pass-through) --------------------

    /// Executes `n` single-cycle integer operations.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.cpu.alu(n);
    }

    /// Executes one integer multiply.
    #[inline]
    pub fn mul(&mut self) {
        self.cpu.mul();
    }

    /// Executes one integer divide.
    #[inline]
    pub fn div(&mut self) {
        self.cpu.div();
    }

    /// Executes `n` pipelined floating-point operations.
    #[inline]
    pub fn flop(&mut self, n: u64) {
        self.cpu.flop(n);
    }

    /// Executes a conditional branch; returns `taken`.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) -> bool {
        self.cpu.branch(site, taken)
    }

    /// Executes one register-to-register MMX operation.
    #[inline]
    pub fn mmx(&mut self, op: MmxOp, a: u64, b: u64) -> u64 {
        self.cpu.mmx(op, a, b)
    }

    // ---- routed memory operations ----------------------------------------

    #[inline]
    fn lookup(&self, addr: VAddr) -> Option<(u32, usize)> {
        let rad = self.rad.as_ref()?;
        let frame = (addr.get() >> PAGE_SHIFT) as usize;
        let pid = *rad.frames.get(frame)?;
        pid.map(|p| (p, (addr.get() & PAGE_MASK) as usize))
    }

    /// Pre-access hook. Waits out a busy page, then returns `true` when the
    /// address lies in a page's control area — the caller must charge an
    /// uncached access and perform a raw RAM transfer instead of a cached
    /// access.
    #[inline]
    fn pre_access(&mut self, addr: VAddr) -> bool {
        match self.lookup(addr) {
            Some((pid, offset)) => {
                self.wait_page_idle(pid);
                offset < sync::CTRL_SIZE
            }
            None => false,
        }
    }

    /// After a 32-bit control-area store: starts the bound function if this
    /// word/value combination triggers it.
    fn maybe_trigger(&mut self, addr: VAddr, value: u32) {
        if !addr.get().is_multiple_of(4) {
            return;
        }
        let Some((pid, offset)) = self.lookup(addr) else {
            return;
        };
        let triggers = {
            let rad = self.rad.as_ref().expect("routed access without RADram");
            let entry = rad.table.entry(PageId::new(pid));
            rad.table.function_of(entry.group).map(|f| f.triggers(offset / 4, value))
        };
        if triggers == Some(true) {
            self.activate_page(pid);
        }
    }

    /// Loads a byte.
    #[inline]
    pub fn load_u8(&mut self, addr: VAddr) -> u8 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u8(addr);
        }
        self.cpu.load_u8(addr)
    }

    /// Loads a 16-bit word.
    #[inline]
    pub fn load_u16(&mut self, addr: VAddr) -> u16 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u16(addr);
        }
        self.cpu.load_u16(addr)
    }

    /// Loads a 32-bit word.
    #[inline]
    pub fn load_u32(&mut self, addr: VAddr) -> u32 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u32(addr);
        }
        self.cpu.load_u32(addr)
    }

    /// Loads a 64-bit word.
    #[inline]
    pub fn load_u64(&mut self, addr: VAddr) -> u64 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u64(addr);
        }
        self.cpu.load_u64(addr)
    }

    /// Loads a double.
    #[inline]
    pub fn load_f64(&mut self, addr: VAddr) -> f64 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_f64(addr);
        }
        self.cpu.load_f64(addr)
    }

    /// Stores a byte.
    #[inline]
    pub fn store_u8(&mut self, addr: VAddr, v: u8) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u8(addr, v);
            return;
        }
        self.cpu.store_u8(addr, v);
    }

    /// Stores a 16-bit word.
    #[inline]
    pub fn store_u16(&mut self, addr: VAddr, v: u16) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u16(addr, v);
            return;
        }
        self.cpu.store_u16(addr, v);
    }

    /// Stores a 32-bit word. A store to a bound page's command word starts an
    /// activation, exactly as in the paper ("the processor activates the
    /// pages with an ordinary memory write").
    #[inline]
    pub fn store_u32(&mut self, addr: VAddr, v: u32) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u32(addr, v);
            self.maybe_trigger(addr, v);
            return;
        }
        self.cpu.store_u32(addr, v);
    }

    /// Stores a 64-bit word (control-area stores of this width never
    /// trigger activations; use 32-bit stores for command words).
    #[inline]
    pub fn store_u64(&mut self, addr: VAddr, v: u64) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u64(addr, v);
            return;
        }
        self.cpu.store_u64(addr, v);
    }

    /// Stores a double.
    #[inline]
    pub fn store_f64(&mut self, addr: VAddr, v: f64) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_f64(addr, v);
            return;
        }
        self.cpu.store_f64(addr, v);
    }

    // ---- untimed RAM access (setup and verification only) -----------------

    /// Reads simulated memory without consuming simulated time. For test
    /// setup and result verification only — measured kernels must use the
    /// timed loads.
    pub fn ram_read_u8(&self, addr: VAddr) -> u8 {
        self.cpu.ram.read_u8(addr)
    }

    /// Untimed 16-bit read (see [`System::ram_read_u8`]).
    pub fn ram_read_u16(&self, addr: VAddr) -> u16 {
        self.cpu.ram.read_u16(addr)
    }

    /// Untimed 32-bit read (see [`System::ram_read_u8`]).
    pub fn ram_read_u32(&self, addr: VAddr) -> u32 {
        self.cpu.ram.read_u32(addr)
    }

    /// Untimed 64-bit read (see [`System::ram_read_u8`]).
    pub fn ram_read_u64(&self, addr: VAddr) -> u64 {
        self.cpu.ram.read_u64(addr)
    }

    /// Untimed double read (see [`System::ram_read_u8`]).
    pub fn ram_read_f64(&self, addr: VAddr) -> f64 {
        self.cpu.ram.read_f64(addr)
    }

    /// Writes simulated memory without consuming simulated time. For
    /// workload setup only — measured kernels must use the timed stores.
    pub fn ram_write_u8(&mut self, addr: VAddr, v: u8) {
        self.cpu.ram.write_u8(addr, v);
    }

    /// Untimed bulk write (see [`System::ram_write_u8`]); million-record
    /// workloads stage their data with this instead of a byte loop.
    pub fn ram_write_bytes(&mut self, addr: VAddr, bytes: &[u8]) {
        self.cpu.ram.slice_mut(addr, bytes.len()).copy_from_slice(bytes);
    }

    /// Untimed 16-bit write (see [`System::ram_write_u8`]).
    pub fn ram_write_u16(&mut self, addr: VAddr, v: u16) {
        self.cpu.ram.write_u16(addr, v);
    }

    /// Untimed 32-bit write (see [`System::ram_write_u8`]).
    pub fn ram_write_u32(&mut self, addr: VAddr, v: u32) {
        self.cpu.ram.write_u32(addr, v);
    }

    /// Untimed 64-bit write (see [`System::ram_write_u8`]).
    pub fn ram_write_u64(&mut self, addr: VAddr, v: u64) {
        self.cpu.ram.write_u64(addr, v);
    }

    /// Untimed double write (see [`System::ram_write_u8`]).
    pub fn ram_write_f64(&mut self, addr: VAddr, v: f64) {
        self.cpu.ram.write_f64(addr, v);
    }

    /// Untimed view of `len` bytes at `addr` (see [`System::ram_read_u8`]).
    /// Fast-tier bulk kernels compute over this slice and charge the loop's
    /// instruction stream from counts via [`System::scan_heads`] /
    /// [`System::alu`] / [`System::branch_run`] (DESIGN.md §13).
    pub fn ram_slice(&self, addr: VAddr, len: usize) -> &[u8] {
        self.cpu.ram.slice(addr, len)
    }

    /// Charges a strided record scan in bulk: one filter probe per record
    /// head, `words` 32-bit loads in total (see [`ap_cpu::Cpu::scan_heads`]).
    pub fn scan_heads(&mut self, base: VAddr, records: usize, stride: usize, words: u64) {
        self.cpu.scan_heads(base, records, stride, words);
    }

    /// Charges `n` single-cycle branches at once, predictor untouched (see
    /// [`ap_cpu::Cpu::branch_run`]; fast-tier bulk kernels only).
    pub fn branch_run(&mut self, n: u64) {
        self.cpu.branch_run(n);
    }

    // ---- Active Pages interface ------------------------------------------

    /// Allocates `pages` whole Active Pages into `group`; returns the base
    /// address of the first page. Pages are contiguous.
    ///
    /// # Panics
    ///
    /// Panics on a conventional-memory system.
    pub fn ap_alloc_pages(&mut self, group: GroupId, pages: usize) -> VAddr {
        assert!(pages > 0, "allocating zero pages");
        assert!(self.rad.is_some(), "Active Pages are unavailable on a conventional memory system");
        let base = self.cpu.ram.alloc(pages * PAGE_SIZE, PAGE_SIZE as u64);
        let rad = self.rad.as_mut().unwrap();
        for i in 0..pages {
            let page_base = base + (i * PAGE_SIZE) as u64;
            let pid = rad.table.register_page(group, page_base);
            debug_assert_eq!(pid.index(), rad.pages.len());
            rad.pages.push(PageState::default());
            rad.frames[(page_base.get() >> PAGE_SHIFT) as usize] = Some(pid.index() as u32);
        }
        base
    }

    /// Base address of page `index` within `group`'s allocation order.
    ///
    /// # Panics
    ///
    /// Panics if the group has fewer pages or on a conventional system.
    pub fn group_page_base(&self, group: GroupId, index: usize) -> VAddr {
        let rad = self.rad.as_ref().expect("no Active Pages on a conventional memory system");
        let pid = rad.table.pages_in(group)[index];
        rad.table.entry(pid).base
    }

    /// Number of pages allocated into `group`.
    pub fn group_len(&self, group: GroupId) -> usize {
        self.rad.as_ref().map_or(0, |r| r.table.pages_in(group).len())
    }

    /// Reads control word `word` of the page at `page_base` (uncached).
    pub fn read_ctrl(&mut self, page_base: VAddr, word: usize) -> u32 {
        self.load_u32(page_base + sync::ctrl_offset(word) as u64)
    }

    /// Writes control word `word` of the page at `page_base` (uncached;
    /// writing [`sync::CMD`] triggers the bound function).
    ///
    /// The emitted `ctrl.write` span covers this call's full cycle delta —
    /// including any triggered activation's dispatch overhead — so summing
    /// those spans over a run reproduces the harness's `dispatch_cycles`
    /// measurement (the paper's `T_A · k`).
    pub fn write_ctrl(&mut self, page_base: VAddr, word: usize, v: u32) {
        let t0 = self.cpu.now();
        let addr = page_base + sync::ctrl_offset(word) as u64;
        let pid = self.lookup(addr).map_or(0, |(p, _)| p as u64);
        let deferred_before = self.batch.as_ref().map_or(0, |b| b.deferred.len());
        self.store_u32(addr, v);
        if !ap_trace::enabled(TRACE_RAD) {
            return;
        }
        let event = ap_trace::Event {
            cycle: t0,
            dur: self.cpu.now() - t0,
            subsystem: TRACE_RAD,
            kind: "ctrl.write",
            a: pid,
            b: word as u64,
        };
        if let Some(batch) = self.batch.as_mut() {
            if batch.deferred.len() > deferred_before {
                // This store triggered a deferred execution: hold its span
                // back until the page's `page.run` spans are emitted so the
                // per-page ring keeps the sequential event order.
                batch.deferred.last_mut().unwrap().ctrl_event = Some(event);
                return;
            }
        }
        ap_trace::session::emit(event);
    }

    /// Activates the page at `page_base` by storing `cmd` to its command
    /// word.
    pub fn activate(&mut self, page_base: VAddr, cmd: u32) {
        self.write_ctrl(page_base, sync::CMD, cmd);
    }

    /// Non-blocking status poll: one uncached load of the status word;
    /// returns [`sync::RUNNING`] while the page's logic is busy.
    pub fn poll_status(&mut self, page_base: VAddr) -> u32 {
        self.service_raised();
        let (pid, _) = self.lookup(page_base).expect("poll of a non-Active address");
        let busy = {
            let rad = self.rad.as_ref().unwrap();
            rad.pages[pid as usize].busy_at(self.cpu.now())
        };
        self.cpu.charge_uncached_access(false);
        if busy {
            sync::RUNNING
        } else {
            self.cpu.ram.read_u32(page_base + sync::ctrl_offset(sync::STATUS) as u64)
        }
    }

    /// Blocks (fast-forwarding simulated time) until the page at `page_base`
    /// is idle; stalled cycles are accounted as processor-memory
    /// non-overlap. Services any raised inter-page interrupts on the way.
    pub fn wait_done(&mut self, page_base: VAddr) {
        let (pid, _) = self.lookup(page_base).expect("wait on a non-Active address");
        self.wait_page_idle(pid);
        // One final status read, as the application's poll loop would do.
        self.cpu.charge_uncached_access(false);
    }

    /// Services every raised inter-page request (the paper's
    /// processor-mediated communication). Returns the number of requests
    /// serviced.
    pub fn service_interrupts(&mut self) -> usize {
        self.service_raised()
    }

    fn wait_page_idle(&mut self, pid: u32) {
        // A deferred execution has not published its schedule yet; deliver
        // it before consulting this page's busy/blocked state.
        if self.batch.as_ref().is_some_and(|b| b.deferred_pids.contains(&pid)) {
            self.flush_deferred();
        }
        loop {
            let now = self.cpu.now();
            let (blocked_raise, busy_until) = {
                let rad = self.rad.as_ref().unwrap();
                let st = &rad.pages[pid as usize];
                (st.blocked.as_ref().map(|b| b.raised_at), st.busy_until)
            };
            if let Some(raised_at) = blocked_raise {
                if raised_at > now {
                    self.stall(pid, raised_at - now);
                }
                self.service_raised();
                continue;
            }
            if busy_until > now {
                self.stall(pid, busy_until - now);
            }
            return;
        }
    }

    fn stall(&mut self, pid: u32, cycles: u64) {
        ap_trace::complete(TRACE_RAD, "sync.stall", self.cpu.now(), cycles, pid as u64, 0);
        self.cpu.advance(cycles);
        if let Some(rad) = self.rad.as_mut() {
            rad.counters.non_overlap += cycles;
        }
    }

    /// Services all pending requests whose raise time has arrived.
    fn service_raised(&mut self) -> usize {
        let now = self.cpu.now();
        let mut ready: Vec<u32> = {
            let rad = self.rad.as_mut().unwrap();
            let mut ready = std::mem::take(&mut rad.scratch);
            ready.clear();
            let pages = &rad.pages;
            // In-place split: `pending` keeps the not-yet-raised ids in
            // order, `ready` collects the raised ones in the same pass.
            rad.pending.retain(|&p| {
                let raised =
                    pages[p as usize].blocked.as_ref().map(|b| b.raised_at <= now).unwrap_or(false);
                if raised {
                    ready.push(p);
                }
                !raised
            });
            ready
        };
        if ready.is_empty() {
            self.rad.as_mut().unwrap().scratch = ready;
            return 0;
        }
        ap_trace::instant(TRACE_RAD, "irq.service", now, ready.len() as u64, 0);
        {
            let rad = self.rad.as_mut().unwrap();
            rad.counters.interrupt_batches += 1;
        }
        match self.cfg.service {
            crate::ServiceMode::Interrupt => self.cpu.advance(self.cfg.interrupt_overhead),
            // Polling: no trap; the processor probes a request register.
            crate::ServiceMode::Polling => self.cpu.charge_uncached_access(false),
        }
        let mut serviced = 0;
        for &pid in &ready {
            let blocked: BlockedExec = {
                let rad = self.rad.as_mut().unwrap();
                rad.pages[pid as usize].blocked.take().expect("ready page must be blocked")
            };
            // A page exposes only `outstanding_refs` references at a time;
            // a longer list needs extra service round trips.
            let rounds = blocked.requests.len().div_ceil(self.cfg.outstanding_refs.max(1));
            if rounds > 1 {
                let extra = (rounds - 1) as u64;
                match self.cfg.service {
                    crate::ServiceMode::Interrupt => {
                        self.cpu.advance(extra * self.cfg.interrupt_overhead);
                    }
                    crate::ServiceMode::Polling => {
                        for _ in 0..extra {
                            self.cpu.charge_uncached_access(false);
                        }
                    }
                }
                let rad = self.rad.as_mut().unwrap();
                rad.counters.interrupt_batches += extra;
            }
            for req in &blocked.requests {
                self.mediate_copy(req.dst, req.src, req.len);
                let rad = self.rad.as_mut().unwrap();
                rad.counters.interpage_copies += 1;
                rad.counters.copied_bytes += req.len as u64;
            }
            serviced += blocked.requests.len();
            if blocked.run_on_service {
                // Pre-declared references: the function body runs now that
                // its non-local data has arrived.
                self.execute_and_schedule(pid);
            } else {
                let resume_at = self.cpu.now();
                self.schedule(pid, resume_at, blocked.rest);
            }
        }
        ready.clear();
        self.rad.as_mut().unwrap().scratch = ready;
        serviced
    }

    /// The processor performs an inter-page copy on behalf of a blocked page:
    /// word loads and stores through the cache hierarchy.
    fn mediate_copy(&mut self, dst: VAddr, src: VAddr, len: usize) {
        let t0 = self.cpu.now();
        let words = len / 4;
        for w in 0..words {
            let v = self.cpu.load_u32(src + (w * 4) as u64);
            self.cpu.store_u32(dst + (w * 4) as u64, v);
        }
        for b in (words * 4)..len {
            let v = self.cpu.load_u8(src + b as u64);
            self.cpu.store_u8(dst + b as u64, v);
        }
        // b = 0: processor-mediated (vs. 1 for the in-chip network).
        ap_trace::complete(TRACE_RAD, "interpage.copy", t0, self.cpu.now() - t0, len as u64, 0);
    }

    fn schedule(&mut self, pid: u32, start: u64, events: Vec<active_pages::ExecEvent>) {
        let divisor = self.cfg.logic_divisor;
        let hardware = self.cfg.comm == crate::CommMode::HardwareCopy;
        let mut t = start;
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                active_pages::ExecEvent::Run(c) => {
                    ap_trace::complete(TRACE_RAD, "page.run", t, c * divisor, pid as u64, 0);
                    t += c * divisor;
                    let rad = self.rad.as_mut().unwrap();
                    rad.counters.logic_busy += c * divisor;
                }
                active_pages::ExecEvent::InterPage(request) => {
                    if hardware {
                        // The in-chip network satisfies the reference with
                        // no processor involvement: one 32-bit word per
                        // logic cycle plus a fixed setup.
                        t += self.hardware_copy(&request);
                        continue;
                    }
                    let rad = self.rad.as_mut().unwrap();
                    rad.pages[pid as usize].blocked = Some(BlockedExec {
                        raised_at: t,
                        requests: vec![request],
                        rest: events[i + 1..].to_vec(),
                        run_on_service: false,
                    });
                    rad.pages[pid as usize].busy_until = t;
                    rad.pending.push(pid);
                    return;
                }
            }
        }
        let rad = self.rad.as_mut().unwrap();
        rad.pages[pid as usize].busy_until = t;
    }

    /// Performs an inter-page copy on the in-chip network; returns its cost
    /// in CPU cycles (the data moves immediately in functional terms).
    fn hardware_copy(&mut self, req: &active_pages::CopyRequest) -> u64 {
        self.cpu.ram.copy(req.dst, req.src, req.len);
        // The destination may be cached by the processor.
        self.cpu.invalidate_range(req.dst, req.len as u64);
        {
            let rad = self.rad.as_mut().unwrap();
            rad.counters.interpage_copies += 1;
            rad.counters.copied_bytes += req.len as u64;
        }
        let cost =
            (req.len as u64).div_ceil(4) * self.cfg.logic_divisor + 4 * self.cfg.logic_divisor;
        // b = 1: carried by the in-chip network, no processor involvement.
        ap_trace::complete(TRACE_RAD, "interpage.copy", self.cpu.now(), cost, req.len as u64, 1);
        cost
    }

    /// Runs the bound function on an idle page and schedules its timing from
    /// the current instant. Inside a batched activation the functional
    /// execution is deferred (it never advances the clock or touches memory
    /// outside its own page, so it can run later — and in parallel with
    /// other pages' executions — without changing any simulated outcome).
    fn execute_and_schedule(&mut self, pid: u32) {
        let (base, group, index_in_group) = {
            let rad = self.rad.as_ref().unwrap();
            let e = rad.table.entry(PageId::new(pid));
            (e.base, e.group, e.index_in_group)
        };
        let func: Arc<dyn PageFunction> = self
            .rad
            .as_ref()
            .unwrap()
            .table
            .function_of(group)
            .expect("activation of a page in an unbound group")
            .clone();
        // In-page logic is about to mutate DRAM behind the caches.
        self.cpu.invalidate_range(base, PAGE_SIZE as u64);
        let info = PageInfo { base, group, index_in_group };
        if let Some(batch) = self.batch.as_mut() {
            batch.deferred_pids.insert(pid);
            batch.deferred.push(DeferredExec {
                pid,
                info,
                func,
                start: self.cpu.now(),
                ctrl_event: None,
            });
            return;
        }
        let execution = {
            let bytes = self.cpu.ram.slice_mut(base, PAGE_SIZE);
            let mut slice = PageSlice::new(bytes, info);
            func.execute(&mut slice)
        };
        let start = self.cpu.now();
        self.schedule(pid, start, execution.events().to_vec());
    }

    fn activate_page(&mut self, pid: u32) {
        let (base, group, index_in_group) = {
            let rad = self.rad.as_ref().unwrap();
            let e = rad.table.entry(PageId::new(pid));
            (e.base, e.group, e.index_in_group)
        };
        let func: Arc<dyn PageFunction> = self
            .rad
            .as_ref()
            .unwrap()
            .table
            .function_of(group)
            .expect("activation of a page in an unbound group")
            .clone();
        // Driver-side dispatch overhead: the processor finishes
        // communicating the request before the page's logic starts (this is
        // the dominant component of the paper's activation time T_A).
        self.cpu.advance(self.cfg.activation_overhead);
        self.rad.as_mut().unwrap().counters.activations += 1;
        ap_trace::instant(TRACE_RAD, "page.dispatch", self.cpu.now(), pid as u64, 0);

        // Pre-declared non-local references (paper Section 3): the function
        // blocks before computing until they are satisfied.
        let requests = {
            let info = PageInfo { base, group, index_in_group };
            let bytes = self.cpu.ram.slice_mut(base, PAGE_SIZE);
            let slice = PageSlice::new(bytes, info);
            func.inter_page_requests(&slice)
        };
        if !requests.is_empty() {
            match self.cfg.comm {
                crate::CommMode::HardwareCopy => {
                    let mut cost = 0;
                    for req in &requests {
                        cost += self.hardware_copy(req);
                    }
                    // The logic idles while the network fills the staging
                    // area, then computes.
                    self.cpu.advance(0);
                    let resume = self.cpu.now() + cost;
                    self.execute_and_schedule_at(pid, resume);
                    return;
                }
                crate::CommMode::ProcessorMediated => {
                    // A blocked activation joins the global pending queue,
                    // whose order earlier deferred pages may contribute to:
                    // deliver all deferred work first, then disable
                    // deferral for the rest of the batch.
                    if self.batch.is_some() {
                        self.flush_deferred();
                        self.batch_spare = self.batch.take().map(BatchState::recycled);
                    }
                    let now = self.cpu.now();
                    let rad = self.rad.as_mut().unwrap();
                    rad.pages[pid as usize].blocked = Some(BlockedExec {
                        raised_at: now,
                        requests,
                        rest: Vec::new(),
                        run_on_service: true,
                    });
                    rad.pages[pid as usize].busy_until = now;
                    rad.pending.push(pid);
                    return;
                }
            }
        }
        self.execute_and_schedule(pid);
    }

    /// Like [`Self::execute_and_schedule`] but the logic starts at `start`
    /// (used when an in-chip copy delays the computation).
    fn execute_and_schedule_at(&mut self, pid: u32, start: u64) {
        let (base, group, index_in_group) = {
            let rad = self.rad.as_ref().unwrap();
            let e = rad.table.entry(PageId::new(pid));
            (e.base, e.group, e.index_in_group)
        };
        let func: Arc<dyn PageFunction> = self
            .rad
            .as_ref()
            .unwrap()
            .table
            .function_of(group)
            .expect("activation of a page in an unbound group")
            .clone();
        self.cpu.invalidate_range(base, PAGE_SIZE as u64);
        let info = PageInfo { base, group, index_in_group };
        let execution = {
            let bytes = self.cpu.ram.slice_mut(base, PAGE_SIZE);
            let mut slice = PageSlice::new(bytes, info);
            func.execute(&mut slice)
        };
        self.schedule(pid, start, execution.events().to_vec());
    }

    // ---- batched (parallel) activation ------------------------------------

    /// Activates every page of `group` with `cmd`, no parameter writes.
    /// Equivalent to calling [`System::activate`] on each page in
    /// allocation order; see [`System::activate_pages`].
    pub fn activate_group(&mut self, group: GroupId, cmd: u32) {
        let batch: Vec<PageActivation> = {
            let rad = self.rad.as_ref().expect("group activation on a conventional memory system");
            rad.table
                .pages_in(group)
                .iter()
                .map(|&pid| PageActivation::new(rad.table.entry(pid).base, cmd))
                .collect()
        };
        self.activate_pages(&batch);
    }

    /// Performs a batch of page activations: for each entry, the parameter
    /// control-word writes followed by the command store, in batch order.
    ///
    /// Simulated semantics are *exactly* those of the equivalent
    /// [`System::write_ctrl`]/[`System::activate`] loop — clock, statistics,
    /// trace events and memory contents are bit-identical. The batch form
    /// exists so the host can run the triggered page functions on a thread
    /// pool: each function owns a disjoint 512 KB slice of backing RAM
    /// (via [`active_pages::split_pages`]) and never advances the simulated
    /// clock, so their results can be merged back deterministically in
    /// batch order. Set `AP_SEQUENTIAL=1` (or [`set_force_sequential`],
    /// or [`System::set_sequential`]) to force the sequential oracle.
    ///
    /// Batches that interact through the pending-request queue — duplicate
    /// pages, already-busy pages, pre-declared inter-page references,
    /// hardware-copy communication — transparently fall back to sequential
    /// processing (wholly or from the first interacting entry onward).
    pub fn activate_pages(&mut self, batch: &[PageActivation]) {
        let Some(sanitize) = self.batch_plan(batch) else {
            for entry in batch {
                for &(word, v) in &entry.params {
                    self.write_ctrl(entry.page_base, word, v);
                }
                self.activate(entry.page_base, entry.cmd);
            }
            return;
        };
        // Phase A: sequential bookkeeping. Every processor-visible effect
        // (uncached charges, dispatch overhead, counters, cache
        // invalidation, trace instants) happens here at its sequential
        // instant; triggered executions are deferred. Under the sanitizer
        // the processor's cached traffic in this window — the only window
        // where it coexists with the deferred executions — is tapped.
        let mut state = self.batch_spare.take().unwrap_or_default().recycled();
        state.sanitize = sanitize;
        self.batch = Some(state);
        if sanitize {
            self.cpu.tap_accesses(true);
        }
        for entry in batch {
            for &(word, v) in &entry.params {
                self.write_ctrl(entry.page_base, word, v);
            }
            self.activate(entry.page_base, entry.cmd);
        }
        let tap = if sanitize { self.cpu.take_tapped() } else { None };
        // `activate_page` clears `self.batch` when an entry had to fall
        // back to inline processing (everything deferred was flushed).
        let Some(state) = self.batch.take() else { return };
        if state.deferred.is_empty() {
            self.batch_spare = Some(state.recycled());
            return;
        }
        // Phase B: run the page functions in parallel over disjoint slices.
        let results = self.execute_parallel(&state.deferred, state.sanitize);
        // Phase C: merge in batch order. `schedule` never advances the
        // clock, so replaying it here yields the sequential timeline.
        for (d, (execution, _)) in state.deferred.iter().zip(&results) {
            self.schedule(d.pid, d.start, execution.events().to_vec());
            if let Some(event) = d.ctrl_event {
                ap_trace::session::emit(event);
            }
        }
        if state.sanitize {
            self.sanitize_batch(&state.deferred, &results, tap);
        }
        self.batch_spare = Some(state.recycled());
    }

    /// Classifies `batch`: `None` sends it down the sequential path,
    /// `Some(sanitize)` takes the deferred/parallel path, recording and
    /// cross-checking accesses when `sanitize` is set.
    ///
    /// The classification is static, from the members' declared
    /// [`PageFunction::footprint`]s: all known and page-local proves the
    /// batch disjoint (the fast-track — production runs need no recording
    /// for it); a statically proven write overlap is reported (RC202) and
    /// rejected to the sequential path; anything unknown keeps the runtime
    /// fallbacks. When the sanitizer is on, every parallel batch is
    /// recorded — proven ones included, since auditing the declared
    /// footprints (dynamic ⊆ static, RC204) is precisely its job.
    fn batch_plan(&mut self, batch: &[PageActivation]) -> Option<bool> {
        if !self.batch_parallel_eligible(batch) {
            return None;
        }
        let mut fps: Vec<(u64, StaticFootprint)> = Vec::with_capacity(batch.len());
        for entry in batch {
            let (pid, _) = self.lookup(entry.page_base).expect("eligible batch resolves");
            let rad = self.rad.as_ref().unwrap();
            let group = rad.table.entry(PageId::new(pid)).group;
            let fp =
                rad.table.function_of(group).map_or(StaticFootprint::Unknown, |f| f.footprint());
            fps.push((entry.page_base.get(), fp));
        }
        let refs: Vec<(u64, &StaticFootprint)> = fps.iter().map(|(b, f)| (*b, f)).collect();
        let errors_before = self.race.errors();
        footprint::check_batch_writes(&refs, &mut self.race);
        if self.race.errors() > errors_before {
            self.audit.overlap_rejects += 1;
            return None;
        }
        let page = PAGE_SIZE as u64;
        let proven = fps.iter().all(|(_, f)| {
            f.known().is_some_and(|k| {
                k.reads.runs().iter().chain(k.writes.runs()).all(|&(_, end)| end <= page)
            })
        });
        if proven {
            self.audit.proven_batches += 1;
        } else {
            self.audit.unknown_batches += 1;
        }
        Some(self.sanitize || force_sanitize())
    }

    /// Cross-checks a completed sanitized batch: every page's recorded
    /// accesses against its declared footprint (RC204) and all
    /// participants — pages at their bases plus the processor's tapped
    /// cached traffic — against each other (RC205).
    fn sanitize_batch(
        &mut self,
        deferred: &[DeferredExec],
        results: &[(Execution, Option<PageFootprint>)],
        tap: Option<AccessTap>,
    ) {
        let labels: Vec<String> =
            deferred.iter().map(|d| format!("{}@page{}", d.func.name(), d.pid)).collect();
        for (d, (label, (_, log))) in deferred.iter().zip(labels.iter().zip(results)) {
            if let Some(log) = log {
                footprint::check_dynamic_within(label, log, &d.func.footprint(), &mut self.race);
            }
        }
        let mut cpu_fp = PageFootprint::new();
        if let Some(tap) = &tap {
            for a in tap.accesses() {
                cpu_fp.record(a.addr, a.len as u64, a.write);
            }
            if tap.dropped() > 0 {
                // Tap overflow: degrade to "the processor may have touched
                // anything" rather than under-report.
                cpu_fp.record(0, u64::MAX, false);
                cpu_fp.record(0, u64::MAX, true);
            }
        }
        let mut parts: Vec<(&str, u64, &PageFootprint)> = deferred
            .iter()
            .zip(labels.iter().zip(results))
            .filter_map(|(d, (label, (_, log)))| {
                log.as_ref().map(|log| (label.as_str(), d.info.base.get(), log))
            })
            .collect();
        if !cpu_fp.is_empty() {
            parts.push(("cpu", 0, &cpu_fp));
        }
        footprint::check_dynamic_overlap(&parts, &mut self.race);
    }

    /// True when `batch` can take the deferred/parallel path: Active-Page
    /// memory with processor-mediated communication, no sequential
    /// override, more than one worker available, and a batch of distinct,
    /// unblocked pages with an empty pending queue. Pages that are merely
    /// *busy* are fine — phase A stalls them out inline exactly as the
    /// sequential path would.
    fn batch_parallel_eligible(&self, batch: &[PageActivation]) -> bool {
        let Some(rad) = self.rad.as_ref() else { return false };
        if batch.len() < 2
            || self.sequential
            || force_sequential()
            || self.cfg.comm == crate::CommMode::HardwareCopy
            || active_pages::parallel::thread_budget() < 2
            || !rad.pending.is_empty()
        {
            return false;
        }
        let mut seen = HashSet::with_capacity(batch.len());
        batch.iter().all(|entry| match self.lookup(entry.page_base) {
            Some((pid, _)) => seen.insert(pid) && rad.pages[pid as usize].blocked.is_none(),
            None => false,
        })
    }

    /// Delivers every deferred execution sequentially (in deferral order):
    /// runs the function, schedules its timeline from the recorded dispatch
    /// instant and emits the held-back `ctrl.write` span.
    fn flush_deferred(&mut self) {
        let Some(mut state) = self.batch.take() else { return };
        for d in state.deferred.drain(..) {
            let (execution, log) = {
                let bytes = self.cpu.ram.slice_mut(d.info.base, PAGE_SIZE);
                let mut slice = PageSlice::new(bytes, d.info);
                if state.sanitize {
                    slice.record_accesses();
                }
                let execution = d.func.execute(&mut slice);
                (execution, slice.take_access_log())
            };
            if let Some(log) = &log {
                // Flushed executions run inline (no concurrency), so only
                // the dynamic-within-static claim needs checking.
                let label = format!("{}@page{}", d.func.name(), d.pid);
                footprint::check_dynamic_within(&label, log, &d.func.footprint(), &mut self.race);
            }
            self.schedule(d.pid, d.start, execution.events().to_vec());
            if let Some(event) = d.ctrl_event {
                ap_trace::session::emit(event);
            }
        }
        state.deferred_pids.clear();
        self.batch = Some(state);
    }

    /// Runs the deferred page functions in parallel over disjoint slices.
    ///
    /// The default executor ([`active_pages::parallel::PoolMode::Pooled`])
    /// dispatches `(index, slice)` jobs onto the persistent page-worker
    /// pool, which claims them through an atomic cursor with adaptive
    /// chunking; `PoolMode::Spawn` (or `AP_POOL=spawn`) selects the legacy
    /// spawn-per-batch executor — a fresh `std::thread::scope` pulling jobs
    /// from a mutexed queue — kept so benchmarks can measure the pre-pool
    /// cost in-process. Either way results come back keyed by deferral
    /// order regardless of which thread ran them, so the deterministic
    /// merge is executor-independent. Returns one `(Execution, access
    /// log)` per deferred entry, in order; the log is `Some` only when
    /// `sanitize` asked for recording.
    fn execute_parallel(
        &mut self,
        deferred: &[DeferredExec],
        sanitize: bool,
    ) -> Vec<(Execution, Option<PageFootprint>)> {
        if deferred.is_empty() {
            return Vec::new();
        }
        // Carve disjoint page views out of one covering RAM region (pages
        // need not be contiguous; `split_pages` skips the gaps).
        let mut order: Vec<usize> = (0..deferred.len()).collect();
        order.sort_by_key(|&i| deferred[i].info.base.get());
        let lo = deferred[order[0]].info.base;
        let hi = deferred[*order.last().unwrap()].info.base.get() + PAGE_SIZE as u64;
        let infos: Vec<PageInfo> = order.iter().map(|&i| deferred[i].info).collect();
        let region = self.cpu.ram.slice_mut(lo, (hi - lo.get()) as usize);
        let slices = active_pages::split_pages(region, lo, &infos);

        let threads = active_pages::parallel::thread_budget().min(slices.len()).max(1);
        let mut results: Vec<Option<(Execution, Option<PageFootprint>)>> =
            (0..deferred.len()).map(|_| None).collect();
        match active_pages::parallel::pool_mode() {
            active_pages::parallel::PoolMode::Pooled => {
                // The budget is a cap, not a target: the pool never runs
                // more threads than the host has cores (the legacy spawn
                // arm below keeps the pre-pool behaviour verbatim).
                let threads = active_pages::parallel::effective_threads(threads);
                let jobs: Vec<(usize, PageSlice<'_>)> = order.into_iter().zip(slices).collect();
                let executed =
                    active_pages::parallel::run_batch(jobs, threads, |(i, mut slice)| {
                        if sanitize {
                            slice.record_accesses();
                        }
                        let execution = deferred[i].func.execute(&mut slice);
                        (i, execution, slice.take_access_log())
                    });
                for (i, execution, log) in executed {
                    results[i] = Some((execution, log));
                }
            }
            active_pages::parallel::PoolMode::Spawn => {
                let jobs = Mutex::new(order.into_iter().zip(slices));
                let (tx, rx) = std::sync::mpsc::channel();
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let tx = tx.clone();
                        let jobs = &jobs;
                        scope.spawn(move || loop {
                            let job = jobs.lock().unwrap().next();
                            let Some((i, mut slice)) = job else { return };
                            if sanitize {
                                slice.record_accesses();
                            }
                            let execution = deferred[i].func.execute(&mut slice);
                            let log = slice.take_access_log();
                            let _ = tx.send((i, execution, log));
                        });
                    }
                });
                drop(tx);
                for (i, execution, log) in rx {
                    results[i] = Some((execution, log));
                }
            }
        }
        results.into_iter().map(|r| r.expect("every deferred page must execute")).collect()
    }
}

impl ActivePageMemory for System {
    fn ap_alloc(&mut self, group: GroupId, bytes: usize) -> VAddr {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.ap_alloc_pages(group, pages)
    }

    fn ap_bind(&mut self, group: GroupId, functions: Arc<dyn PageFunction>) {
        assert!(
            functions.logic_elements() <= self.cfg.les_per_page,
            "circuit '{}' needs {} LEs but a RADram page provides {}",
            functions.name(),
            functions.logic_elements(),
            self.cfg.les_per_page
        );
        let rad = self.rad.as_mut().expect("AP_bind on a conventional memory system");
        let pages = rad.table.pages_in(group).len() as u64;
        let rebound = rad.table.bind(group, functions);
        if rebound {
            rad.counters.rebinds += 1;
            let cost = self.cfg.rebind_cost * pages;
            ap_trace::complete(TRACE_RAD, "page.rebind", self.cpu.now(), cost, pages, 0);
            self.cpu.advance(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_pages::Execution;

    /// Sums `PARAM` body words into `RESULT`, one word per logic cycle.
    #[derive(Debug)]
    struct Summer;
    impl PageFunction for Summer {
        fn name(&self) -> &'static str {
            "summer"
        }
        fn logic_elements(&self) -> u32 {
            64
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            let n = page.ctrl(sync::PARAM) as usize;
            let mut sum = 0u32;
            for i in 0..n {
                sum = sum.wrapping_add(page.read_u32(sync::BODY_OFFSET + 4 * i));
            }
            page.set_ctrl(sync::RESULT, sum);
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(n as u64)
        }
    }

    /// Blocks on a copy from the previous page's body before summing.
    #[derive(Debug)]
    struct NeighborSummer;
    impl PageFunction for NeighborSummer {
        fn name(&self) -> &'static str {
            "neighbor-summer"
        }
        fn logic_elements(&self) -> u32 {
            80
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            let base = page.info().base;
            let prev = VAddr::new(base.get() - PAGE_SIZE as u64);
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(10)
                .then_copy(active_pages::CopyRequest {
                    dst: base + sync::BODY_OFFSET as u64,
                    src: prev + sync::BODY_OFFSET as u64,
                    len: 8,
                })
                .then_run(5)
        }
    }

    fn setup(pages: usize) -> (System, VAddr, GroupId) {
        let cfg = RadramConfig::reference().with_ram_capacity(16 << 20);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, pages);
        (sys, base, g)
    }

    #[test]
    fn activation_computes_and_takes_logic_time() {
        let (mut sys, base, g) = setup(1);
        sys.ap_bind(g, Arc::new(Summer));
        for i in 0..8u64 {
            sys.store_u32(base + sync::BODY_OFFSET as u64 + 4 * i, 5);
        }
        sys.write_ctrl(base, sync::PARAM, 8);
        let t0 = sys.now();
        sys.activate(base, 1);
        assert_eq!(sys.poll_status(base), sync::RUNNING);
        sys.wait_done(base);
        // 8 words at divisor 10 = 80 cycles of logic time beyond dispatch.
        assert!(sys.now() - t0 >= 80);
        assert_eq!(sys.read_ctrl(base, sync::RESULT), 40);
        assert_eq!(sys.stats().activations, 1);
        assert!(sys.stats().non_overlap_cycles > 0);
    }

    #[test]
    fn poll_after_completion_sees_done() {
        let (mut sys, base, g) = setup(1);
        sys.ap_bind(g, Arc::new(Summer));
        sys.write_ctrl(base, sync::PARAM, 1);
        sys.activate(base, 1);
        sys.wait_done(base);
        assert_eq!(sys.poll_status(base), sync::DONE);
    }

    #[test]
    fn data_access_to_busy_page_stalls() {
        let (mut sys, base, g) = setup(1);
        sys.ap_bind(g, Arc::new(Summer));
        sys.write_ctrl(base, sync::PARAM, 1000);
        sys.activate(base, 1);
        let before = sys.stats().non_overlap_cycles;
        // Touch the body while the logic runs: must wait it out.
        let _ = sys.load_u32(base + sync::BODY_OFFSET as u64);
        assert!(sys.stats().non_overlap_cycles > before);
    }

    #[test]
    fn interpage_reference_is_processor_mediated() {
        let (mut sys, base, g) = setup(2);
        sys.ap_bind(g, Arc::new(NeighborSummer));
        let page1 = base + PAGE_SIZE as u64;
        // Seed page 0's body.
        sys.store_u32(base + sync::BODY_OFFSET as u64, 0x11);
        sys.store_u32(base + sync::BODY_OFFSET as u64 + 4, 0x22);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        let s = sys.stats();
        assert_eq!(s.interrupt_batches, 1);
        assert_eq!(s.interpage_copies, 1);
        assert_eq!(s.copied_bytes, 8);
        // The copy really happened.
        assert_eq!(sys.load_u32(page1 + sync::BODY_OFFSET as u64), 0x11);
    }

    #[test]
    fn rebind_charges_reconfiguration() {
        let (mut sys, _base, g) = setup(4);
        sys.ap_bind(g, Arc::new(Summer));
        let t0 = sys.now();
        sys.ap_bind(g, Arc::new(Summer));
        assert_eq!(sys.stats().rebinds, 1);
        assert_eq!(sys.now() - t0, 4 * RadramConfig::reference().rebind_cost);
    }

    #[test]
    #[should_panic(expected = "LEs")]
    fn over_budget_circuit_rejected() {
        #[derive(Debug)]
        struct Huge;
        impl PageFunction for Huge {
            fn name(&self) -> &'static str {
                "huge"
            }
            fn logic_elements(&self) -> u32 {
                1000
            }
            fn execute(&self, _p: &mut PageSlice<'_>) -> Execution {
                Execution::empty()
            }
        }
        let (mut sys, _base, g) = setup(1);
        sys.ap_bind(g, Arc::new(Huge));
    }

    #[test]
    #[should_panic(expected = "conventional")]
    fn conventional_rejects_ap_alloc() {
        let mut sys =
            System::conventional_with(RadramConfig::reference().with_ram_capacity(4 << 20));
        sys.ap_alloc_pages(GroupId::new(0), 1);
    }

    #[test]
    fn conventional_loads_are_plain() {
        let mut sys =
            System::conventional_with(RadramConfig::reference().with_ram_capacity(4 << 20));
        let a = sys.ram_alloc(64, 64);
        sys.store_u32(a, 9);
        assert_eq!(sys.load_u32(a), 9);
        let s = sys.stats();
        assert_eq!(s.activations, 0);
        assert_eq!(s.cpu.mem.uncached, 0);
    }

    #[test]
    fn group_page_base_walks_allocation_order() {
        let (sys, base, g) = setup(3);
        assert_eq!(sys.group_page_base(g, 0), base);
        assert_eq!(sys.group_page_base(g, 2) - base, 2 * PAGE_SIZE as u64);
        assert_eq!(sys.group_len(g), 3);
    }

    /// Declares its boundary word as a pre-request, then sums two body
    /// words (exercises blocked-before-compute activation).
    #[derive(Debug)]
    struct PreFetcher;
    impl PageFunction for PreFetcher {
        fn name(&self) -> &'static str {
            "pre-fetcher"
        }
        fn logic_elements(&self) -> u32 {
            90
        }
        fn inter_page_requests(&self, page: &PageSlice<'_>) -> Vec<active_pages::CopyRequest> {
            let base = page.info().base;
            if page.info().index_in_group == 0 {
                return vec![];
            }
            let prev = VAddr::new(base.get() - PAGE_SIZE as u64);
            vec![active_pages::CopyRequest {
                dst: base + (sync::BODY_OFFSET + 4) as u64,
                src: prev + sync::BODY_OFFSET as u64,
                len: 4,
            }]
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            let a = page.read_u32(sync::BODY_OFFSET);
            let b = page.read_u32(sync::BODY_OFFSET + 4);
            page.set_ctrl(sync::RESULT, a.wrapping_add(b));
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(4)
        }
    }

    #[test]
    fn pre_declared_requests_block_then_compute() {
        let (mut sys, base, g) = setup(2);
        sys.ap_bind(g, Arc::new(PreFetcher));
        let page1 = base + PAGE_SIZE as u64;
        sys.store_u32(base + sync::BODY_OFFSET as u64, 30); // page 0 boundary word
        sys.store_u32(page1 + sync::BODY_OFFSET as u64, 12);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        // The function must have computed with the *copied* value.
        assert_eq!(sys.read_ctrl(page1, sync::RESULT), 42);
        let st = sys.stats();
        assert_eq!(st.interrupt_batches, 1);
        assert_eq!(st.interpage_copies, 1);
    }

    #[test]
    fn hardware_copy_mode_needs_no_processor() {
        let cfg = RadramConfig::reference()
            .with_ram_capacity(16 << 20)
            .with_comm_mode(crate::CommMode::HardwareCopy);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, 2);
        sys.ap_bind(g, Arc::new(PreFetcher));
        let page1 = base + PAGE_SIZE as u64;
        sys.store_u32(base + sync::BODY_OFFSET as u64, 30);
        sys.store_u32(page1 + sync::BODY_OFFSET as u64, 12);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        assert_eq!(sys.read_ctrl(page1, sync::RESULT), 42);
        let st = sys.stats();
        assert_eq!(st.interrupt_batches, 0, "hardware mode must not interrupt");
        assert_eq!(st.interpage_copies, 1);
    }

    #[test]
    fn hardware_copy_also_covers_mid_execution_references() {
        let cfg = RadramConfig::reference()
            .with_ram_capacity(16 << 20)
            .with_comm_mode(crate::CommMode::HardwareCopy);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, 2);
        sys.ap_bind(g, Arc::new(NeighborSummer));
        let page1 = base + PAGE_SIZE as u64;
        sys.store_u32(base + sync::BODY_OFFSET as u64, 0x77);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        assert_eq!(sys.load_u32(page1 + sync::BODY_OFFSET as u64), 0x77);
        assert_eq!(sys.stats().interrupt_batches, 0);
    }

    #[test]
    fn polling_mode_skips_trap_overhead() {
        let run = |service: crate::ServiceMode| {
            let cfg =
                RadramConfig::reference().with_ram_capacity(16 << 20).with_service_mode(service);
            let mut sys = System::radram(cfg);
            let g = GroupId::new(0);
            let base = sys.ap_alloc_pages(g, 2);
            sys.ap_bind(g, Arc::new(PreFetcher));
            let page1 = base + PAGE_SIZE as u64;
            sys.store_u32(base + sync::BODY_OFFSET as u64, 1);
            let t0 = sys.now();
            sys.activate(page1, 1);
            sys.wait_done(page1);
            sys.now() - t0
        };
        assert!(run(crate::ServiceMode::Polling) < run(crate::ServiceMode::Interrupt));
    }

    #[test]
    fn limited_outstanding_refs_need_more_round_trips() {
        /// Declares three separate references.
        #[derive(Debug)]
        struct ThreeRefs;
        impl PageFunction for ThreeRefs {
            fn name(&self) -> &'static str {
                "three-refs"
            }
            fn logic_elements(&self) -> u32 {
                50
            }
            fn inter_page_requests(&self, page: &PageSlice<'_>) -> Vec<active_pages::CopyRequest> {
                let base = page.info().base;
                let prev = VAddr::new(base.get() - PAGE_SIZE as u64);
                (0..3u64)
                    .map(|k| active_pages::CopyRequest {
                        dst: base + sync::BODY_OFFSET as u64 + 4 * k,
                        src: prev + sync::BODY_OFFSET as u64 + 4 * k,
                        len: 4,
                    })
                    .collect()
            }
            fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
                page.set_ctrl(sync::STATUS, sync::DONE);
                Execution::run(1)
            }
        }
        let run = |refs: usize| {
            let cfg =
                RadramConfig::reference().with_ram_capacity(16 << 20).with_outstanding_refs(refs);
            let mut sys = System::radram(cfg);
            let g = GroupId::new(0);
            let base = sys.ap_alloc_pages(g, 2);
            sys.ap_bind(g, Arc::new(ThreeRefs));
            let page1 = base + PAGE_SIZE as u64;
            sys.activate(page1, 1);
            sys.wait_done(page1);
            sys.stats().interrupt_batches
        };
        assert_eq!(run(3), 1, "three outstanding refs fit one interrupt");
        assert_eq!(run(1), 3, "one outstanding ref needs three round trips");
    }

    /// Builds a Summer-bound system with `pages` pages whose bodies are
    /// seeded with deterministic values, for batched-vs-sequential
    /// comparisons.
    fn summer_setup(pages: usize) -> (System, VAddr, GroupId) {
        let (mut sys, base, g) = setup(pages);
        sys.ap_bind(g, Arc::new(Summer));
        for p in 0..pages {
            for i in 0..8u64 {
                let addr = base + (p * PAGE_SIZE) as u64 + sync::BODY_OFFSET as u64 + 4 * i;
                sys.ram_write_u32(addr, (p as u32 + 1) * 10 + i as u32);
            }
        }
        (sys, base, g)
    }

    /// Drives `sys` through one broadcast round sequentially: per-page
    /// parameter write plus command store, then a wait on every page.
    fn manual_broadcast(sys: &mut System, base: VAddr, pages: usize) {
        for p in 0..pages {
            let pb = base + (p * PAGE_SIZE) as u64;
            sys.write_ctrl(pb, sync::PARAM, 8);
            sys.activate(pb, 1);
        }
        for p in 0..pages {
            sys.wait_done(base + (p * PAGE_SIZE) as u64);
        }
    }

    #[test]
    fn batched_activation_matches_manual_loop() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 6;
        let (mut seq, seq_base, _) = summer_setup(pages);
        seq.set_sequential(true);
        manual_broadcast(&mut seq, seq_base, pages);

        let (mut par, par_base, _) = summer_setup(pages);
        let batch: Vec<PageActivation> = (0..pages)
            .map(|p| {
                PageActivation::new(par_base + (p * PAGE_SIZE) as u64, 1).with_param(sync::PARAM, 8)
            })
            .collect();
        par.activate_pages(&batch);
        for p in 0..pages {
            par.wait_done(par_base + (p * PAGE_SIZE) as u64);
        }

        assert_eq!(par.now(), seq.now(), "simulated clocks must agree");
        assert_eq!(format!("{:?}", par.stats()), format!("{:?}", seq.stats()));
        for p in 0..pages {
            assert_eq!(
                par.read_ctrl(par_base + (p * PAGE_SIZE) as u64, sync::RESULT),
                seq.read_ctrl(seq_base + (p * PAGE_SIZE) as u64, sync::RESULT),
                "page {p} result"
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        // Regression: `execute_parallel` used to index `order[0]` before
        // checking for an empty deferral list.
        let (mut sys, _, g) = setup(2);
        sys.ap_bind(g, Arc::new(Summer));
        let t0 = sys.now();
        sys.activate_pages(&[]);
        assert_eq!(sys.now(), t0);
        assert!(sys.execute_parallel(&[], false).is_empty());
        assert!(sys.execute_parallel(&[], true).is_empty());
    }

    #[test]
    fn pooled_and_spawn_executors_are_bit_identical() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 6;
        let run = |mode: active_pages::parallel::PoolMode| {
            active_pages::parallel::set_pool_mode(Some(mode));
            let (mut sys, base, _) = summer_setup(pages);
            let batch: Vec<PageActivation> = (0..pages)
                .map(|p| {
                    PageActivation::new(base + (p * PAGE_SIZE) as u64, 1).with_param(sync::PARAM, 8)
                })
                .collect();
            sys.activate_pages(&batch);
            for p in 0..pages {
                sys.wait_done(base + (p * PAGE_SIZE) as u64);
            }
            let results: Vec<u32> = (0..pages)
                .map(|p| sys.read_ctrl(base + (p * PAGE_SIZE) as u64, sync::RESULT))
                .collect();
            let out = (sys.now(), format!("{:?}", sys.stats()), results);
            active_pages::parallel::set_pool_mode(None);
            out
        };
        let pooled = run(active_pages::parallel::PoolMode::Pooled);
        let spawn = run(active_pages::parallel::PoolMode::Spawn);
        assert_eq!(pooled, spawn);
    }

    #[test]
    fn activate_group_covers_every_page() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 5;
        let (mut sys, base, g) = summer_setup(pages);
        for p in 0..pages {
            sys.write_ctrl(base + (p * PAGE_SIZE) as u64, sync::PARAM, 8);
        }
        sys.activate_group(g, 1);
        for p in 0..pages {
            sys.wait_done(base + (p * PAGE_SIZE) as u64);
        }
        assert_eq!(sys.stats().activations, pages as u64);
        for p in 0..pages {
            let pb = base + (p * PAGE_SIZE) as u64;
            let expected: u32 = (0..8).map(|i| (p as u32 + 1) * 10 + i).sum();
            assert_eq!(sys.read_ctrl(pb, sync::RESULT), expected, "page {p}");
        }
    }

    #[test]
    fn batched_mid_execution_blocks_match_sequential() {
        active_pages::parallel::set_thread_budget(4);
        // NeighborSummer blocks mid-run on a copy from the previous page;
        // batch pages 1..4 so the pending-queue order matters.
        let run = |sequential: bool| {
            let (mut sys, base, _g) = setup(4);
            sys.set_sequential(sequential);
            sys.ap_bind(GroupId::new(0), Arc::new(NeighborSummer));
            for p in 0..4u64 {
                sys.ram_write_u32(
                    base + p * PAGE_SIZE as u64 + sync::BODY_OFFSET as u64,
                    0x100 + p as u32,
                );
            }
            let batch: Vec<PageActivation> =
                (1..4).map(|p| PageActivation::new(base + (p * PAGE_SIZE) as u64, 1)).collect();
            sys.activate_pages(&batch);
            for p in 1..4 {
                sys.wait_done(base + (p * PAGE_SIZE) as u64);
            }
            let words: Vec<u32> = (1..4u64)
                .map(|p| sys.ram_read_u32(base + p * PAGE_SIZE as u64 + sync::BODY_OFFSET as u64))
                .collect();
            (sys.now(), format!("{:?}", sys.stats()), words)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn batched_predeclared_requests_match_sequential() {
        active_pages::parallel::set_thread_budget(4);
        // PreFetcher: page 0 defers (no requests), page 1+ raise
        // pre-declared references, forcing the mid-batch flush + fallback.
        let run = |sequential: bool| {
            let (mut sys, base, _g) = setup(3);
            sys.set_sequential(sequential);
            sys.ap_bind(GroupId::new(0), Arc::new(PreFetcher));
            for p in 0..3u64 {
                sys.ram_write_u32(
                    base + p * PAGE_SIZE as u64 + sync::BODY_OFFSET as u64,
                    7 * (p as u32 + 1),
                );
            }
            let batch: Vec<PageActivation> =
                (0..3).map(|p| PageActivation::new(base + (p * PAGE_SIZE) as u64, 1)).collect();
            sys.activate_pages(&batch);
            for p in 0..3 {
                sys.wait_done(base + (p * PAGE_SIZE) as u64);
            }
            let results: Vec<u32> = (0..3)
                .map(|p| sys.read_ctrl(base + (p * PAGE_SIZE) as u64, sync::RESULT))
                .collect();
            (sys.now(), format!("{:?}", sys.stats()), results)
        };
        assert_eq!(run(false), run(true));
    }

    /// Summer with an honest page-local footprint declaration.
    #[derive(Debug)]
    struct DeclaredSummer;
    impl PageFunction for DeclaredSummer {
        fn name(&self) -> &'static str {
            "declared-summer"
        }
        fn logic_elements(&self) -> u32 {
            64
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            Summer.execute(page)
        }
        fn footprint(&self) -> StaticFootprint {
            // Ctrl reads/writes plus the first 8 body words.
            StaticFootprint::Known(
                PageFootprint::new()
                    .with_read(0, sync::CTRL_SIZE as u64)
                    .with_read(sync::BODY_OFFSET as u64, (sync::BODY_OFFSET + 32) as u64)
                    .with_write(0, sync::CTRL_SIZE as u64),
            )
        }
    }

    /// Summer whose declaration omits the body reads (seeded RC204 defect).
    #[derive(Debug)]
    struct UnderDeclaredSummer;
    impl PageFunction for UnderDeclaredSummer {
        fn name(&self) -> &'static str {
            "under-declared-summer"
        }
        fn logic_elements(&self) -> u32 {
            64
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            Summer.execute(page)
        }
        fn footprint(&self) -> StaticFootprint {
            StaticFootprint::Known(
                PageFootprint::new()
                    .with_read(0, sync::CTRL_SIZE as u64)
                    .with_write(0, sync::CTRL_SIZE as u64),
            )
        }
    }

    /// Declares a write footprint escaping into the next page (seeded RC202
    /// defect); never actually executed in the overlap test.
    #[derive(Debug)]
    struct EscapingWriter;
    impl PageFunction for EscapingWriter {
        fn name(&self) -> &'static str {
            "escaping-writer"
        }
        fn logic_elements(&self) -> u32 {
            10
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(1)
        }
        fn footprint(&self) -> StaticFootprint {
            // Claims to write its own body plus the start of the next page.
            StaticFootprint::Known(
                PageFootprint::new()
                    .with_write(0, sync::CTRL_SIZE as u64)
                    .with_write(sync::BODY_OFFSET as u64, (PAGE_SIZE + 4096) as u64),
            )
        }
    }

    fn broadcast_batch(base: VAddr, pages: usize) -> Vec<PageActivation> {
        (0..pages)
            .map(|p| {
                PageActivation::new(base + (p * PAGE_SIZE) as u64, 1).with_param(sync::PARAM, 8)
            })
            .collect()
    }

    #[test]
    fn sanitizer_is_clean_on_honest_footprints() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 4;
        let (mut sys, base, g) = summer_setup(pages);
        sys.ap_bind(g, Arc::new(DeclaredSummer));
        sys.set_sanitize(true);
        sys.activate_pages(&broadcast_batch(base, pages));
        for p in 0..pages {
            sys.wait_done(base + (p * PAGE_SIZE) as u64);
        }
        assert!(sys.race_report().is_empty(), "{}", sys.race_report().render_text());
        assert_eq!(sys.race_audit().proven_batches, 1);
        let s = sys.stats();
        assert_eq!((s.race_errors, s.race_warnings), (0, 0));
    }

    #[test]
    fn sanitizer_fires_rc204_on_underdeclared_footprint() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 3;
        let (mut sys, base, g) = summer_setup(pages);
        sys.ap_bind(g, Arc::new(UnderDeclaredSummer));
        sys.set_sanitize(true);
        sys.activate_pages(&broadcast_batch(base, pages));
        for p in 0..pages {
            sys.wait_done(base + (p * PAGE_SIZE) as u64);
        }
        let hits: Vec<_> =
            sys.race_report().with_code(ap_lint::Code::DynamicFootprintViolation).collect();
        assert_eq!(hits.len(), pages, "one RC204 per page whose reads escaped the declaration");
        assert!(sys.stats().race_errors >= 1);
    }

    #[test]
    fn statically_overlapping_batch_rejected_to_sequential_with_rc202() {
        active_pages::parallel::set_thread_budget(4);
        let (mut sys, base, g) = setup(3);
        sys.ap_bind(g, Arc::new(EscapingWriter));
        sys.activate_pages(&broadcast_batch(base, 3));
        for p in 0..3 {
            sys.wait_done(base + (p * PAGE_SIZE) as u64);
        }
        assert_eq!(sys.race_audit().overlap_rejects, 1);
        assert!(
            sys.race_report().with_code(ap_lint::Code::BatchWriteOverlap).count() >= 1,
            "RC202 must be reported"
        );
        // The rejected batch still executed — sequentially.
        assert_eq!(sys.stats().activations, 3);
    }

    #[test]
    fn sanitizer_off_records_nothing() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 3;
        let (mut sys, base, g) = summer_setup(pages);
        sys.ap_bind(g, Arc::new(UnderDeclaredSummer));
        sys.activate_pages(&broadcast_batch(base, pages));
        for p in 0..pages {
            sys.wait_done(base + (p * PAGE_SIZE) as u64);
        }
        assert!(sys.race_report().is_empty(), "defect must go unnoticed with the sanitizer off");
    }

    #[test]
    fn sanitized_batch_matches_sequential_run_bit_for_bit() {
        active_pages::parallel::set_thread_budget(4);
        let pages = 5;
        let run = |sequential: bool, sanitize: bool| {
            let (mut sys, base, g) = summer_setup(pages);
            sys.ap_bind(g, Arc::new(DeclaredSummer));
            sys.set_sequential(sequential);
            sys.set_sanitize(sanitize);
            sys.activate_pages(&broadcast_batch(base, pages));
            for p in 0..pages {
                sys.wait_done(base + (p * PAGE_SIZE) as u64);
            }
            let results: Vec<u32> = (0..pages)
                .map(|p| sys.read_ctrl(base + (p * PAGE_SIZE) as u64, sync::RESULT))
                .collect();
            (sys.now(), format!("{:?}", sys.stats()), results)
        };
        let oracle = run(true, false);
        assert_eq!(run(false, true), oracle, "sanitized parallel vs sequential");
        assert_eq!(run(false, false), oracle, "plain parallel vs sequential");
    }

    #[test]
    fn slow_logic_takes_longer() {
        let run = |divisor: u64| {
            let cfg =
                RadramConfig::reference().with_ram_capacity(8 << 20).with_logic_divisor(divisor);
            let mut sys = System::radram(cfg);
            let g = GroupId::new(0);
            let base = sys.ap_alloc_pages(g, 1);
            sys.ap_bind(g, Arc::new(Summer));
            sys.write_ctrl(base, sync::PARAM, 1000);
            let t0 = sys.now();
            sys.activate(base, 1);
            sys.wait_done(base);
            sys.now() - t0
        };
        assert!(run(100) > run(2));
    }
}
