//! The full-system simulator: processor + caches + (optionally) RADram.

use crate::config::RadramConfig;
use crate::state::{BlockedExec, PageState};
use crate::stats::SystemStats;
use active_pages::{
    sync, ActivePageMemory, GroupId, PageFunction, PageId, PageInfo, PageSlice, PAGE_SIZE,
};
use ap_cpu::mmx::MmxOp;
use ap_cpu::Cpu;
use ap_mem::VAddr;
use ap_trace::Subsystem::Radram as TRACE_RAD;
use std::rc::Rc;

const PAGE_SHIFT: u32 = 19; // 512 KB pages
const PAGE_MASK: u64 = PAGE_SIZE as u64 - 1;

#[derive(Debug, Default)]
struct Counters {
    non_overlap: u64,
    activations: u64,
    interrupt_batches: u64,
    interpage_copies: u64,
    copied_bytes: u64,
    rebinds: u64,
    logic_busy: u64,
}

#[derive(Debug)]
struct Rad {
    table: active_pages::PageTable,
    pages: Vec<PageState>,
    frames: Vec<Option<u32>>,
    /// Page ids blocked on an inter-page reference, in raise order.
    pending: Vec<u32>,
    counters: Counters,
}

/// A simulated uniprocessor workstation with either a conventional memory
/// system or a RADram Active-Page memory system.
///
/// Applications drive the system through instrumented operations (loads,
/// stores, ALU/FP work, branches); the Active-Page interface of the paper is
/// available through [`System::ap_alloc`], [`System::ap_bind`] and ordinary
/// stores to per-page synchronization variables ([`System::activate`],
/// [`System::wait_done`] are thin helpers over those stores and loads).
///
/// See the crate-level example for an end-to-end activation.
#[derive(Debug)]
pub struct System {
    cpu: Cpu,
    cfg: RadramConfig,
    rad: Option<Rad>,
}

impl System {
    /// Creates a system with a conventional memory system (the baseline in
    /// every experiment) and the reference configuration.
    pub fn conventional() -> Self {
        Self::conventional_with(RadramConfig::reference())
    }

    /// Creates a conventional-memory system with custom parameters (cache
    /// sizes, DRAM latency); Active-Page calls panic on this system.
    pub fn conventional_with(cfg: RadramConfig) -> Self {
        System { cpu: Cpu::new(cfg.cpu.clone(), cfg.ram_capacity), cfg, rad: None }
    }

    /// Creates a system whose memory implements Active Pages on RADram.
    pub fn radram(cfg: RadramConfig) -> Self {
        let frames = cfg.ram_capacity >> PAGE_SHIFT;
        System {
            cpu: Cpu::new(cfg.cpu.clone(), cfg.ram_capacity),
            rad: Some(Rad {
                table: active_pages::PageTable::new(),
                pages: Vec::new(),
                frames: vec![None; frames],
                pending: Vec::new(),
                counters: Counters::default(),
            }),
            cfg,
        }
    }

    /// Returns the system configuration.
    pub fn config(&self) -> &RadramConfig {
        &self.cfg
    }

    /// True when the memory system implements Active Pages.
    pub fn is_radram(&self) -> bool {
        self.rad.is_some()
    }

    /// Current simulated time in CPU cycles (1 ns at the 1 GHz reference).
    #[inline]
    pub fn now(&self) -> u64 {
        self.cpu.now()
    }

    /// Cycles elapsed since `t0`, emitted as a traced `kernel.region` span.
    /// Apps call this exactly where they measure their kernel region, so an
    /// exported timeline carries the same envelope the aggregate
    /// `kernel_cycles` counter reports (the event stream alone undercounts
    /// by whatever trailing work emits no event).
    pub fn kernel_region(&self, t0: u64) -> u64 {
        let kernel = self.cpu.now() - t0;
        ap_trace::complete(TRACE_RAD, "kernel.region", t0, kernel, 0, 0);
        kernel
    }

    /// Cumulative processor-memory non-overlap stall cycles so far (zero on
    /// a conventional system). Cheap accessor for phase accounting.
    #[inline]
    pub fn non_overlap_cycles(&self) -> u64 {
        self.rad.as_ref().map_or(0, |r| r.counters.non_overlap)
    }

    /// Allocates ordinary (non-Active-Page) memory.
    pub fn ram_alloc(&mut self, len: usize, align: u64) -> VAddr {
        self.cpu.ram.alloc(len, align)
    }

    /// Whole-run statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        let mut s = SystemStats { cpu: self.cpu.stats(), ..SystemStats::default() };
        if let Some(rad) = &self.rad {
            s.non_overlap_cycles = rad.counters.non_overlap;
            s.activations = rad.counters.activations;
            s.interrupt_batches = rad.counters.interrupt_batches;
            s.interpage_copies = rad.counters.interpage_copies;
            s.copied_bytes = rad.counters.copied_bytes;
            s.rebinds = rad.counters.rebinds;
            s.logic_busy_cycles = rad.counters.logic_busy;
        }
        s
    }

    // ---- processor compute operations (pass-through) --------------------

    /// Executes `n` single-cycle integer operations.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.cpu.alu(n);
    }

    /// Executes one integer multiply.
    #[inline]
    pub fn mul(&mut self) {
        self.cpu.mul();
    }

    /// Executes one integer divide.
    #[inline]
    pub fn div(&mut self) {
        self.cpu.div();
    }

    /// Executes `n` pipelined floating-point operations.
    #[inline]
    pub fn flop(&mut self, n: u64) {
        self.cpu.flop(n);
    }

    /// Executes a conditional branch; returns `taken`.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) -> bool {
        self.cpu.branch(site, taken)
    }

    /// Executes one register-to-register MMX operation.
    #[inline]
    pub fn mmx(&mut self, op: MmxOp, a: u64, b: u64) -> u64 {
        self.cpu.mmx(op, a, b)
    }

    // ---- routed memory operations ----------------------------------------

    #[inline]
    fn lookup(&self, addr: VAddr) -> Option<(u32, usize)> {
        let rad = self.rad.as_ref()?;
        let frame = (addr.get() >> PAGE_SHIFT) as usize;
        let pid = *rad.frames.get(frame)?;
        pid.map(|p| (p, (addr.get() & PAGE_MASK) as usize))
    }

    /// Pre-access hook. Waits out a busy page, then returns `true` when the
    /// address lies in a page's control area — the caller must charge an
    /// uncached access and perform a raw RAM transfer instead of a cached
    /// access.
    #[inline]
    fn pre_access(&mut self, addr: VAddr) -> bool {
        match self.lookup(addr) {
            Some((pid, offset)) => {
                self.wait_page_idle(pid);
                offset < sync::CTRL_SIZE
            }
            None => false,
        }
    }

    /// After a 32-bit control-area store: starts the bound function if this
    /// word/value combination triggers it.
    fn maybe_trigger(&mut self, addr: VAddr, value: u32) {
        if !addr.get().is_multiple_of(4) {
            return;
        }
        let Some((pid, offset)) = self.lookup(addr) else {
            return;
        };
        let triggers = {
            let rad = self.rad.as_ref().expect("routed access without RADram");
            let entry = rad.table.entry(PageId::new(pid));
            rad.table.function_of(entry.group).map(|f| f.triggers(offset / 4, value))
        };
        if triggers == Some(true) {
            self.activate_page(pid);
        }
    }

    /// Loads a byte.
    #[inline]
    pub fn load_u8(&mut self, addr: VAddr) -> u8 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u8(addr);
        }
        self.cpu.load_u8(addr)
    }

    /// Loads a 16-bit word.
    #[inline]
    pub fn load_u16(&mut self, addr: VAddr) -> u16 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u16(addr);
        }
        self.cpu.load_u16(addr)
    }

    /// Loads a 32-bit word.
    #[inline]
    pub fn load_u32(&mut self, addr: VAddr) -> u32 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u32(addr);
        }
        self.cpu.load_u32(addr)
    }

    /// Loads a 64-bit word.
    #[inline]
    pub fn load_u64(&mut self, addr: VAddr) -> u64 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_u64(addr);
        }
        self.cpu.load_u64(addr)
    }

    /// Loads a double.
    #[inline]
    pub fn load_f64(&mut self, addr: VAddr) -> f64 {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(false);
            return self.cpu.ram.read_f64(addr);
        }
        self.cpu.load_f64(addr)
    }

    /// Stores a byte.
    #[inline]
    pub fn store_u8(&mut self, addr: VAddr, v: u8) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u8(addr, v);
            return;
        }
        self.cpu.store_u8(addr, v);
    }

    /// Stores a 16-bit word.
    #[inline]
    pub fn store_u16(&mut self, addr: VAddr, v: u16) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u16(addr, v);
            return;
        }
        self.cpu.store_u16(addr, v);
    }

    /// Stores a 32-bit word. A store to a bound page's command word starts an
    /// activation, exactly as in the paper ("the processor activates the
    /// pages with an ordinary memory write").
    #[inline]
    pub fn store_u32(&mut self, addr: VAddr, v: u32) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u32(addr, v);
            self.maybe_trigger(addr, v);
            return;
        }
        self.cpu.store_u32(addr, v);
    }

    /// Stores a 64-bit word (control-area stores of this width never
    /// trigger activations; use 32-bit stores for command words).
    #[inline]
    pub fn store_u64(&mut self, addr: VAddr, v: u64) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_u64(addr, v);
            return;
        }
        self.cpu.store_u64(addr, v);
    }

    /// Stores a double.
    #[inline]
    pub fn store_f64(&mut self, addr: VAddr, v: f64) {
        if self.pre_access(addr) {
            self.cpu.charge_uncached_access(true);
            self.cpu.ram.write_f64(addr, v);
            return;
        }
        self.cpu.store_f64(addr, v);
    }

    // ---- untimed RAM access (setup and verification only) -----------------

    /// Reads simulated memory without consuming simulated time. For test
    /// setup and result verification only — measured kernels must use the
    /// timed loads.
    pub fn ram_read_u8(&self, addr: VAddr) -> u8 {
        self.cpu.ram.read_u8(addr)
    }

    /// Untimed 16-bit read (see [`System::ram_read_u8`]).
    pub fn ram_read_u16(&self, addr: VAddr) -> u16 {
        self.cpu.ram.read_u16(addr)
    }

    /// Untimed 32-bit read (see [`System::ram_read_u8`]).
    pub fn ram_read_u32(&self, addr: VAddr) -> u32 {
        self.cpu.ram.read_u32(addr)
    }

    /// Untimed 64-bit read (see [`System::ram_read_u8`]).
    pub fn ram_read_u64(&self, addr: VAddr) -> u64 {
        self.cpu.ram.read_u64(addr)
    }

    /// Untimed double read (see [`System::ram_read_u8`]).
    pub fn ram_read_f64(&self, addr: VAddr) -> f64 {
        self.cpu.ram.read_f64(addr)
    }

    /// Writes simulated memory without consuming simulated time. For
    /// workload setup only — measured kernels must use the timed stores.
    pub fn ram_write_u8(&mut self, addr: VAddr, v: u8) {
        self.cpu.ram.write_u8(addr, v);
    }

    /// Untimed 16-bit write (see [`System::ram_write_u8`]).
    pub fn ram_write_u16(&mut self, addr: VAddr, v: u16) {
        self.cpu.ram.write_u16(addr, v);
    }

    /// Untimed 32-bit write (see [`System::ram_write_u8`]).
    pub fn ram_write_u32(&mut self, addr: VAddr, v: u32) {
        self.cpu.ram.write_u32(addr, v);
    }

    /// Untimed 64-bit write (see [`System::ram_write_u8`]).
    pub fn ram_write_u64(&mut self, addr: VAddr, v: u64) {
        self.cpu.ram.write_u64(addr, v);
    }

    /// Untimed double write (see [`System::ram_write_u8`]).
    pub fn ram_write_f64(&mut self, addr: VAddr, v: f64) {
        self.cpu.ram.write_f64(addr, v);
    }

    // ---- Active Pages interface ------------------------------------------

    /// Allocates `pages` whole Active Pages into `group`; returns the base
    /// address of the first page. Pages are contiguous.
    ///
    /// # Panics
    ///
    /// Panics on a conventional-memory system.
    pub fn ap_alloc_pages(&mut self, group: GroupId, pages: usize) -> VAddr {
        assert!(pages > 0, "allocating zero pages");
        assert!(self.rad.is_some(), "Active Pages are unavailable on a conventional memory system");
        let base = self.cpu.ram.alloc(pages * PAGE_SIZE, PAGE_SIZE as u64);
        let rad = self.rad.as_mut().unwrap();
        for i in 0..pages {
            let page_base = base + (i * PAGE_SIZE) as u64;
            let pid = rad.table.register_page(group, page_base);
            debug_assert_eq!(pid.index(), rad.pages.len());
            rad.pages.push(PageState::default());
            rad.frames[(page_base.get() >> PAGE_SHIFT) as usize] = Some(pid.index() as u32);
        }
        base
    }

    /// Base address of page `index` within `group`'s allocation order.
    ///
    /// # Panics
    ///
    /// Panics if the group has fewer pages or on a conventional system.
    pub fn group_page_base(&self, group: GroupId, index: usize) -> VAddr {
        let rad = self.rad.as_ref().expect("no Active Pages on a conventional memory system");
        let pid = rad.table.pages_in(group)[index];
        rad.table.entry(pid).base
    }

    /// Number of pages allocated into `group`.
    pub fn group_len(&self, group: GroupId) -> usize {
        self.rad.as_ref().map_or(0, |r| r.table.pages_in(group).len())
    }

    /// Reads control word `word` of the page at `page_base` (uncached).
    pub fn read_ctrl(&mut self, page_base: VAddr, word: usize) -> u32 {
        self.load_u32(page_base + sync::ctrl_offset(word) as u64)
    }

    /// Writes control word `word` of the page at `page_base` (uncached;
    /// writing [`sync::CMD`] triggers the bound function).
    ///
    /// The emitted `ctrl.write` span covers this call's full cycle delta —
    /// including any triggered activation's dispatch overhead — so summing
    /// those spans over a run reproduces the harness's `dispatch_cycles`
    /// measurement (the paper's `T_A · k`).
    pub fn write_ctrl(&mut self, page_base: VAddr, word: usize, v: u32) {
        let t0 = self.cpu.now();
        self.store_u32(page_base + sync::ctrl_offset(word) as u64, v);
        ap_trace::complete(TRACE_RAD, "ctrl.write", t0, self.cpu.now() - t0, word as u64, v as u64);
    }

    /// Activates the page at `page_base` by storing `cmd` to its command
    /// word.
    pub fn activate(&mut self, page_base: VAddr, cmd: u32) {
        self.write_ctrl(page_base, sync::CMD, cmd);
    }

    /// Non-blocking status poll: one uncached load of the status word;
    /// returns [`sync::RUNNING`] while the page's logic is busy.
    pub fn poll_status(&mut self, page_base: VAddr) -> u32 {
        self.service_raised();
        let (pid, _) = self.lookup(page_base).expect("poll of a non-Active address");
        let busy = {
            let rad = self.rad.as_ref().unwrap();
            rad.pages[pid as usize].busy_at(self.cpu.now())
        };
        self.cpu.charge_uncached_access(false);
        if busy {
            sync::RUNNING
        } else {
            self.cpu.ram.read_u32(page_base + sync::ctrl_offset(sync::STATUS) as u64)
        }
    }

    /// Blocks (fast-forwarding simulated time) until the page at `page_base`
    /// is idle; stalled cycles are accounted as processor-memory
    /// non-overlap. Services any raised inter-page interrupts on the way.
    pub fn wait_done(&mut self, page_base: VAddr) {
        let (pid, _) = self.lookup(page_base).expect("wait on a non-Active address");
        self.wait_page_idle(pid);
        // One final status read, as the application's poll loop would do.
        self.cpu.charge_uncached_access(false);
    }

    /// Services every raised inter-page request (the paper's
    /// processor-mediated communication). Returns the number of requests
    /// serviced.
    pub fn service_interrupts(&mut self) -> usize {
        self.service_raised()
    }

    fn wait_page_idle(&mut self, pid: u32) {
        loop {
            let now = self.cpu.now();
            let (blocked_raise, busy_until) = {
                let rad = self.rad.as_ref().unwrap();
                let st = &rad.pages[pid as usize];
                (st.blocked.as_ref().map(|b| b.raised_at), st.busy_until)
            };
            if let Some(raised_at) = blocked_raise {
                if raised_at > now {
                    self.stall(raised_at - now);
                }
                self.service_raised();
                continue;
            }
            if busy_until > now {
                self.stall(busy_until - now);
            }
            return;
        }
    }

    fn stall(&mut self, cycles: u64) {
        ap_trace::complete(TRACE_RAD, "sync.stall", self.cpu.now(), cycles, 0, 0);
        self.cpu.advance(cycles);
        if let Some(rad) = self.rad.as_mut() {
            rad.counters.non_overlap += cycles;
        }
    }

    /// Services all pending requests whose raise time has arrived.
    fn service_raised(&mut self) -> usize {
        let now = self.cpu.now();
        let ready: Vec<u32> = {
            let rad = self.rad.as_mut().unwrap();
            let (ready, later): (Vec<u32>, Vec<u32>) = rad.pending.iter().partition(|&&p| {
                rad.pages[p as usize].blocked.as_ref().map(|b| b.raised_at <= now).unwrap_or(false)
            });
            rad.pending = later;
            ready
        };
        if ready.is_empty() {
            return 0;
        }
        ap_trace::instant(TRACE_RAD, "irq.service", now, ready.len() as u64, 0);
        {
            let rad = self.rad.as_mut().unwrap();
            rad.counters.interrupt_batches += 1;
        }
        match self.cfg.service {
            crate::ServiceMode::Interrupt => self.cpu.advance(self.cfg.interrupt_overhead),
            // Polling: no trap; the processor probes a request register.
            crate::ServiceMode::Polling => self.cpu.charge_uncached_access(false),
        }
        let mut serviced = 0;
        for pid in ready {
            let blocked: BlockedExec = {
                let rad = self.rad.as_mut().unwrap();
                rad.pages[pid as usize].blocked.take().expect("ready page must be blocked")
            };
            // A page exposes only `outstanding_refs` references at a time;
            // a longer list needs extra service round trips.
            let rounds = blocked.requests.len().div_ceil(self.cfg.outstanding_refs.max(1));
            if rounds > 1 {
                let extra = (rounds - 1) as u64;
                match self.cfg.service {
                    crate::ServiceMode::Interrupt => {
                        self.cpu.advance(extra * self.cfg.interrupt_overhead);
                    }
                    crate::ServiceMode::Polling => {
                        for _ in 0..extra {
                            self.cpu.charge_uncached_access(false);
                        }
                    }
                }
                let rad = self.rad.as_mut().unwrap();
                rad.counters.interrupt_batches += extra;
            }
            for req in &blocked.requests {
                self.mediate_copy(req.dst, req.src, req.len);
                let rad = self.rad.as_mut().unwrap();
                rad.counters.interpage_copies += 1;
                rad.counters.copied_bytes += req.len as u64;
            }
            serviced += blocked.requests.len();
            if blocked.run_on_service {
                // Pre-declared references: the function body runs now that
                // its non-local data has arrived.
                self.execute_and_schedule(pid);
            } else {
                let resume_at = self.cpu.now();
                self.schedule(pid, resume_at, blocked.rest);
            }
        }
        serviced
    }

    /// The processor performs an inter-page copy on behalf of a blocked page:
    /// word loads and stores through the cache hierarchy.
    fn mediate_copy(&mut self, dst: VAddr, src: VAddr, len: usize) {
        let t0 = self.cpu.now();
        let words = len / 4;
        for w in 0..words {
            let v = self.cpu.load_u32(src + (w * 4) as u64);
            self.cpu.store_u32(dst + (w * 4) as u64, v);
        }
        for b in (words * 4)..len {
            let v = self.cpu.load_u8(src + b as u64);
            self.cpu.store_u8(dst + b as u64, v);
        }
        // b = 0: processor-mediated (vs. 1 for the in-chip network).
        ap_trace::complete(TRACE_RAD, "interpage.copy", t0, self.cpu.now() - t0, len as u64, 0);
    }

    fn schedule(&mut self, pid: u32, start: u64, events: Vec<active_pages::ExecEvent>) {
        let divisor = self.cfg.logic_divisor;
        let hardware = self.cfg.comm == crate::CommMode::HardwareCopy;
        let mut t = start;
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                active_pages::ExecEvent::Run(c) => {
                    ap_trace::complete(TRACE_RAD, "page.run", t, c * divisor, pid as u64, 0);
                    t += c * divisor;
                    let rad = self.rad.as_mut().unwrap();
                    rad.counters.logic_busy += c * divisor;
                }
                active_pages::ExecEvent::InterPage(request) => {
                    if hardware {
                        // The in-chip network satisfies the reference with
                        // no processor involvement: one 32-bit word per
                        // logic cycle plus a fixed setup.
                        t += self.hardware_copy(&request);
                        continue;
                    }
                    let rad = self.rad.as_mut().unwrap();
                    rad.pages[pid as usize].blocked = Some(BlockedExec {
                        raised_at: t,
                        requests: vec![request],
                        rest: events[i + 1..].to_vec(),
                        run_on_service: false,
                    });
                    rad.pages[pid as usize].busy_until = t;
                    rad.pending.push(pid);
                    return;
                }
            }
        }
        let rad = self.rad.as_mut().unwrap();
        rad.pages[pid as usize].busy_until = t;
    }

    /// Performs an inter-page copy on the in-chip network; returns its cost
    /// in CPU cycles (the data moves immediately in functional terms).
    fn hardware_copy(&mut self, req: &active_pages::CopyRequest) -> u64 {
        self.cpu.ram.copy(req.dst, req.src, req.len);
        // The destination may be cached by the processor.
        self.cpu.invalidate_range(req.dst, req.len as u64);
        {
            let rad = self.rad.as_mut().unwrap();
            rad.counters.interpage_copies += 1;
            rad.counters.copied_bytes += req.len as u64;
        }
        let cost =
            (req.len as u64).div_ceil(4) * self.cfg.logic_divisor + 4 * self.cfg.logic_divisor;
        // b = 1: carried by the in-chip network, no processor involvement.
        ap_trace::complete(TRACE_RAD, "interpage.copy", self.cpu.now(), cost, req.len as u64, 1);
        cost
    }

    /// Runs the bound function on an idle page and schedules its timing from
    /// the current instant.
    fn execute_and_schedule(&mut self, pid: u32) {
        let (base, group, index_in_group) = {
            let rad = self.rad.as_ref().unwrap();
            let e = rad.table.entry(PageId::new(pid));
            (e.base, e.group, e.index_in_group)
        };
        let func: Rc<dyn PageFunction> = self
            .rad
            .as_ref()
            .unwrap()
            .table
            .function_of(group)
            .expect("activation of a page in an unbound group")
            .clone();
        // In-page logic is about to mutate DRAM behind the caches.
        self.cpu.invalidate_range(base, PAGE_SIZE as u64);
        let info = PageInfo { base, group, index_in_group };
        let execution = {
            let bytes = self.cpu.ram.slice_mut(base, PAGE_SIZE);
            let mut slice = PageSlice::new(bytes, info);
            func.execute(&mut slice)
        };
        let start = self.cpu.now();
        self.schedule(pid, start, execution.events().to_vec());
    }

    fn activate_page(&mut self, pid: u32) {
        let (base, group, index_in_group) = {
            let rad = self.rad.as_ref().unwrap();
            let e = rad.table.entry(PageId::new(pid));
            (e.base, e.group, e.index_in_group)
        };
        let func: Rc<dyn PageFunction> = self
            .rad
            .as_ref()
            .unwrap()
            .table
            .function_of(group)
            .expect("activation of a page in an unbound group")
            .clone();
        // Driver-side dispatch overhead: the processor finishes
        // communicating the request before the page's logic starts (this is
        // the dominant component of the paper's activation time T_A).
        self.cpu.advance(self.cfg.activation_overhead);
        self.rad.as_mut().unwrap().counters.activations += 1;
        ap_trace::instant(TRACE_RAD, "page.dispatch", self.cpu.now(), pid as u64, 0);

        // Pre-declared non-local references (paper Section 3): the function
        // blocks before computing until they are satisfied.
        let requests = {
            let info = PageInfo { base, group, index_in_group };
            let bytes = self.cpu.ram.slice_mut(base, PAGE_SIZE);
            let slice = PageSlice::new(bytes, info);
            func.inter_page_requests(&slice)
        };
        if !requests.is_empty() {
            match self.cfg.comm {
                crate::CommMode::HardwareCopy => {
                    let mut cost = 0;
                    for req in &requests {
                        cost += self.hardware_copy(req);
                    }
                    // The logic idles while the network fills the staging
                    // area, then computes.
                    self.cpu.advance(0);
                    let resume = self.cpu.now() + cost;
                    self.execute_and_schedule_at(pid, resume);
                    return;
                }
                crate::CommMode::ProcessorMediated => {
                    let now = self.cpu.now();
                    let rad = self.rad.as_mut().unwrap();
                    rad.pages[pid as usize].blocked = Some(BlockedExec {
                        raised_at: now,
                        requests,
                        rest: Vec::new(),
                        run_on_service: true,
                    });
                    rad.pages[pid as usize].busy_until = now;
                    rad.pending.push(pid);
                    return;
                }
            }
        }
        self.execute_and_schedule(pid);
    }

    /// Like [`Self::execute_and_schedule`] but the logic starts at `start`
    /// (used when an in-chip copy delays the computation).
    fn execute_and_schedule_at(&mut self, pid: u32, start: u64) {
        let (base, group, index_in_group) = {
            let rad = self.rad.as_ref().unwrap();
            let e = rad.table.entry(PageId::new(pid));
            (e.base, e.group, e.index_in_group)
        };
        let func: Rc<dyn PageFunction> = self
            .rad
            .as_ref()
            .unwrap()
            .table
            .function_of(group)
            .expect("activation of a page in an unbound group")
            .clone();
        self.cpu.invalidate_range(base, PAGE_SIZE as u64);
        let info = PageInfo { base, group, index_in_group };
        let execution = {
            let bytes = self.cpu.ram.slice_mut(base, PAGE_SIZE);
            let mut slice = PageSlice::new(bytes, info);
            func.execute(&mut slice)
        };
        self.schedule(pid, start, execution.events().to_vec());
    }
}

impl ActivePageMemory for System {
    fn ap_alloc(&mut self, group: GroupId, bytes: usize) -> VAddr {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.ap_alloc_pages(group, pages)
    }

    fn ap_bind(&mut self, group: GroupId, functions: Rc<dyn PageFunction>) {
        assert!(
            functions.logic_elements() <= self.cfg.les_per_page,
            "circuit '{}' needs {} LEs but a RADram page provides {}",
            functions.name(),
            functions.logic_elements(),
            self.cfg.les_per_page
        );
        let rad = self.rad.as_mut().expect("AP_bind on a conventional memory system");
        let pages = rad.table.pages_in(group).len() as u64;
        let rebound = rad.table.bind(group, functions);
        if rebound {
            rad.counters.rebinds += 1;
            let cost = self.cfg.rebind_cost * pages;
            ap_trace::complete(TRACE_RAD, "page.rebind", self.cpu.now(), cost, pages, 0);
            self.cpu.advance(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_pages::Execution;

    /// Sums `PARAM` body words into `RESULT`, one word per logic cycle.
    #[derive(Debug)]
    struct Summer;
    impl PageFunction for Summer {
        fn name(&self) -> &'static str {
            "summer"
        }
        fn logic_elements(&self) -> u32 {
            64
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            let n = page.ctrl(sync::PARAM) as usize;
            let mut sum = 0u32;
            for i in 0..n {
                sum = sum.wrapping_add(page.read_u32(sync::BODY_OFFSET + 4 * i));
            }
            page.set_ctrl(sync::RESULT, sum);
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(n as u64)
        }
    }

    /// Blocks on a copy from the previous page's body before summing.
    #[derive(Debug)]
    struct NeighborSummer;
    impl PageFunction for NeighborSummer {
        fn name(&self) -> &'static str {
            "neighbor-summer"
        }
        fn logic_elements(&self) -> u32 {
            80
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            let base = page.info().base;
            let prev = VAddr::new(base.get() - PAGE_SIZE as u64);
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(10)
                .then_copy(active_pages::CopyRequest {
                    dst: base + sync::BODY_OFFSET as u64,
                    src: prev + sync::BODY_OFFSET as u64,
                    len: 8,
                })
                .then_run(5)
        }
    }

    fn setup(pages: usize) -> (System, VAddr, GroupId) {
        let cfg = RadramConfig::reference().with_ram_capacity(16 << 20);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, pages);
        (sys, base, g)
    }

    #[test]
    fn activation_computes_and_takes_logic_time() {
        let (mut sys, base, g) = setup(1);
        sys.ap_bind(g, Rc::new(Summer));
        for i in 0..8u64 {
            sys.store_u32(base + sync::BODY_OFFSET as u64 + 4 * i, 5);
        }
        sys.write_ctrl(base, sync::PARAM, 8);
        let t0 = sys.now();
        sys.activate(base, 1);
        assert_eq!(sys.poll_status(base), sync::RUNNING);
        sys.wait_done(base);
        // 8 words at divisor 10 = 80 cycles of logic time beyond dispatch.
        assert!(sys.now() - t0 >= 80);
        assert_eq!(sys.read_ctrl(base, sync::RESULT), 40);
        assert_eq!(sys.stats().activations, 1);
        assert!(sys.stats().non_overlap_cycles > 0);
    }

    #[test]
    fn poll_after_completion_sees_done() {
        let (mut sys, base, g) = setup(1);
        sys.ap_bind(g, Rc::new(Summer));
        sys.write_ctrl(base, sync::PARAM, 1);
        sys.activate(base, 1);
        sys.wait_done(base);
        assert_eq!(sys.poll_status(base), sync::DONE);
    }

    #[test]
    fn data_access_to_busy_page_stalls() {
        let (mut sys, base, g) = setup(1);
        sys.ap_bind(g, Rc::new(Summer));
        sys.write_ctrl(base, sync::PARAM, 1000);
        sys.activate(base, 1);
        let before = sys.stats().non_overlap_cycles;
        // Touch the body while the logic runs: must wait it out.
        let _ = sys.load_u32(base + sync::BODY_OFFSET as u64);
        assert!(sys.stats().non_overlap_cycles > before);
    }

    #[test]
    fn interpage_reference_is_processor_mediated() {
        let (mut sys, base, g) = setup(2);
        sys.ap_bind(g, Rc::new(NeighborSummer));
        let page1 = base + PAGE_SIZE as u64;
        // Seed page 0's body.
        sys.store_u32(base + sync::BODY_OFFSET as u64, 0x11);
        sys.store_u32(base + sync::BODY_OFFSET as u64 + 4, 0x22);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        let s = sys.stats();
        assert_eq!(s.interrupt_batches, 1);
        assert_eq!(s.interpage_copies, 1);
        assert_eq!(s.copied_bytes, 8);
        // The copy really happened.
        assert_eq!(sys.load_u32(page1 + sync::BODY_OFFSET as u64), 0x11);
    }

    #[test]
    fn rebind_charges_reconfiguration() {
        let (mut sys, _base, g) = setup(4);
        sys.ap_bind(g, Rc::new(Summer));
        let t0 = sys.now();
        sys.ap_bind(g, Rc::new(Summer));
        assert_eq!(sys.stats().rebinds, 1);
        assert_eq!(sys.now() - t0, 4 * RadramConfig::reference().rebind_cost);
    }

    #[test]
    #[should_panic(expected = "LEs")]
    fn over_budget_circuit_rejected() {
        #[derive(Debug)]
        struct Huge;
        impl PageFunction for Huge {
            fn name(&self) -> &'static str {
                "huge"
            }
            fn logic_elements(&self) -> u32 {
                1000
            }
            fn execute(&self, _p: &mut PageSlice<'_>) -> Execution {
                Execution::empty()
            }
        }
        let (mut sys, _base, g) = setup(1);
        sys.ap_bind(g, Rc::new(Huge));
    }

    #[test]
    #[should_panic(expected = "conventional")]
    fn conventional_rejects_ap_alloc() {
        let mut sys =
            System::conventional_with(RadramConfig::reference().with_ram_capacity(4 << 20));
        sys.ap_alloc_pages(GroupId::new(0), 1);
    }

    #[test]
    fn conventional_loads_are_plain() {
        let mut sys =
            System::conventional_with(RadramConfig::reference().with_ram_capacity(4 << 20));
        let a = sys.ram_alloc(64, 64);
        sys.store_u32(a, 9);
        assert_eq!(sys.load_u32(a), 9);
        let s = sys.stats();
        assert_eq!(s.activations, 0);
        assert_eq!(s.cpu.mem.uncached, 0);
    }

    #[test]
    fn group_page_base_walks_allocation_order() {
        let (sys, base, g) = setup(3);
        assert_eq!(sys.group_page_base(g, 0), base);
        assert_eq!(sys.group_page_base(g, 2) - base, 2 * PAGE_SIZE as u64);
        assert_eq!(sys.group_len(g), 3);
    }

    /// Declares its boundary word as a pre-request, then sums two body
    /// words (exercises blocked-before-compute activation).
    #[derive(Debug)]
    struct PreFetcher;
    impl PageFunction for PreFetcher {
        fn name(&self) -> &'static str {
            "pre-fetcher"
        }
        fn logic_elements(&self) -> u32 {
            90
        }
        fn inter_page_requests(&self, page: &PageSlice<'_>) -> Vec<active_pages::CopyRequest> {
            let base = page.info().base;
            if page.info().index_in_group == 0 {
                return vec![];
            }
            let prev = VAddr::new(base.get() - PAGE_SIZE as u64);
            vec![active_pages::CopyRequest {
                dst: base + (sync::BODY_OFFSET + 4) as u64,
                src: prev + sync::BODY_OFFSET as u64,
                len: 4,
            }]
        }
        fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
            let a = page.read_u32(sync::BODY_OFFSET);
            let b = page.read_u32(sync::BODY_OFFSET + 4);
            page.set_ctrl(sync::RESULT, a.wrapping_add(b));
            page.set_ctrl(sync::STATUS, sync::DONE);
            Execution::run(4)
        }
    }

    #[test]
    fn pre_declared_requests_block_then_compute() {
        let (mut sys, base, g) = setup(2);
        sys.ap_bind(g, Rc::new(PreFetcher));
        let page1 = base + PAGE_SIZE as u64;
        sys.store_u32(base + sync::BODY_OFFSET as u64, 30); // page 0 boundary word
        sys.store_u32(page1 + sync::BODY_OFFSET as u64, 12);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        // The function must have computed with the *copied* value.
        assert_eq!(sys.read_ctrl(page1, sync::RESULT), 42);
        let st = sys.stats();
        assert_eq!(st.interrupt_batches, 1);
        assert_eq!(st.interpage_copies, 1);
    }

    #[test]
    fn hardware_copy_mode_needs_no_processor() {
        let cfg = RadramConfig::reference()
            .with_ram_capacity(16 << 20)
            .with_comm_mode(crate::CommMode::HardwareCopy);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, 2);
        sys.ap_bind(g, Rc::new(PreFetcher));
        let page1 = base + PAGE_SIZE as u64;
        sys.store_u32(base + sync::BODY_OFFSET as u64, 30);
        sys.store_u32(page1 + sync::BODY_OFFSET as u64, 12);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        assert_eq!(sys.read_ctrl(page1, sync::RESULT), 42);
        let st = sys.stats();
        assert_eq!(st.interrupt_batches, 0, "hardware mode must not interrupt");
        assert_eq!(st.interpage_copies, 1);
    }

    #[test]
    fn hardware_copy_also_covers_mid_execution_references() {
        let cfg = RadramConfig::reference()
            .with_ram_capacity(16 << 20)
            .with_comm_mode(crate::CommMode::HardwareCopy);
        let mut sys = System::radram(cfg);
        let g = GroupId::new(0);
        let base = sys.ap_alloc_pages(g, 2);
        sys.ap_bind(g, Rc::new(NeighborSummer));
        let page1 = base + PAGE_SIZE as u64;
        sys.store_u32(base + sync::BODY_OFFSET as u64, 0x77);
        sys.activate(page1, 1);
        sys.wait_done(page1);
        assert_eq!(sys.load_u32(page1 + sync::BODY_OFFSET as u64), 0x77);
        assert_eq!(sys.stats().interrupt_batches, 0);
    }

    #[test]
    fn polling_mode_skips_trap_overhead() {
        let run = |service: crate::ServiceMode| {
            let cfg =
                RadramConfig::reference().with_ram_capacity(16 << 20).with_service_mode(service);
            let mut sys = System::radram(cfg);
            let g = GroupId::new(0);
            let base = sys.ap_alloc_pages(g, 2);
            sys.ap_bind(g, Rc::new(PreFetcher));
            let page1 = base + PAGE_SIZE as u64;
            sys.store_u32(base + sync::BODY_OFFSET as u64, 1);
            let t0 = sys.now();
            sys.activate(page1, 1);
            sys.wait_done(page1);
            sys.now() - t0
        };
        assert!(run(crate::ServiceMode::Polling) < run(crate::ServiceMode::Interrupt));
    }

    #[test]
    fn limited_outstanding_refs_need_more_round_trips() {
        /// Declares three separate references.
        #[derive(Debug)]
        struct ThreeRefs;
        impl PageFunction for ThreeRefs {
            fn name(&self) -> &'static str {
                "three-refs"
            }
            fn logic_elements(&self) -> u32 {
                50
            }
            fn inter_page_requests(&self, page: &PageSlice<'_>) -> Vec<active_pages::CopyRequest> {
                let base = page.info().base;
                let prev = VAddr::new(base.get() - PAGE_SIZE as u64);
                (0..3u64)
                    .map(|k| active_pages::CopyRequest {
                        dst: base + sync::BODY_OFFSET as u64 + 4 * k,
                        src: prev + sync::BODY_OFFSET as u64 + 4 * k,
                        len: 4,
                    })
                    .collect()
            }
            fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
                page.set_ctrl(sync::STATUS, sync::DONE);
                Execution::run(1)
            }
        }
        let run = |refs: usize| {
            let cfg =
                RadramConfig::reference().with_ram_capacity(16 << 20).with_outstanding_refs(refs);
            let mut sys = System::radram(cfg);
            let g = GroupId::new(0);
            let base = sys.ap_alloc_pages(g, 2);
            sys.ap_bind(g, Rc::new(ThreeRefs));
            let page1 = base + PAGE_SIZE as u64;
            sys.activate(page1, 1);
            sys.wait_done(page1);
            sys.stats().interrupt_batches
        };
        assert_eq!(run(3), 1, "three outstanding refs fit one interrupt");
        assert_eq!(run(1), 3, "one outstanding ref needs three round trips");
    }

    #[test]
    fn slow_logic_takes_longer() {
        let run = |divisor: u64| {
            let cfg =
                RadramConfig::reference().with_ram_capacity(8 << 20).with_logic_divisor(divisor);
            let mut sys = System::radram(cfg);
            let g = GroupId::new(0);
            let base = sys.ap_alloc_pages(g, 1);
            sys.ap_bind(g, Rc::new(Summer));
            sys.write_ctrl(base, sync::PARAM, 1000);
            let t0 = sys.now();
            sys.activate(base, 1);
            sys.wait_done(base);
            sys.now() - t0
        };
        assert!(run(100) > run(2));
    }
}
