//! RADram — the Reconfigurable Architecture DRAM implementation of Active
//! Pages (paper, Section 3), plus the full-system simulator used for every
//! experiment in the evaluation.
//!
//! RADram integrates a block of reconfigurable logic (256 4-LUT logic
//! elements) with each 512 KB DRAM subarray. Each subarray plus its logic
//! hosts one Active Page. The processor talks to pages through ordinary
//! memory operations; synchronization variables in each page's control area
//! start computations and publish results. Inter-page references are
//! *processor mediated*: a page that needs non-local data blocks and raises
//! an interrupt, and the processor performs the copy.
//!
//! The central type is [`System`]: a 1 GHz processor (`ap-cpu`) behind the
//! Table 1 cache hierarchy (`ap-mem`), backed by either a conventional DRAM
//! memory system or a RADram Active-Page memory system. Applications are
//! written against `System` once per partition (conventional and
//! Active-Page) and the benchmark harness compares the two.
//!
//! # Examples
//!
//! ```
//! use radram::{RadramConfig, System};
//! use active_pages::{ActivePageMemory, Execution, GroupId, PageFunction, PageSlice, sync};
//! use std::sync::Arc;
//!
//! /// A page function that sums the first `n` body words.
//! #[derive(Debug)]
//! struct Summer;
//! impl PageFunction for Summer {
//!     fn name(&self) -> &'static str { "summer" }
//!     fn logic_elements(&self) -> u32 { 64 }
//!     fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
//!         let n = page.ctrl(sync::PARAM) as usize;
//!         let mut sum = 0u32;
//!         for i in 0..n {
//!             sum = sum.wrapping_add(page.read_u32(sync::BODY_OFFSET + 4 * i));
//!         }
//!         page.set_ctrl(sync::RESULT, sum);
//!         page.set_ctrl(sync::STATUS, sync::DONE);
//!         Execution::run(n as u64) // one 32-bit word per logic cycle
//!     }
//! }
//!
//! let mut sys = System::radram(RadramConfig::reference());
//! let g = GroupId::new(0);
//! let base = sys.ap_alloc_pages(g, 1); // one 512 KB Active Page
//! sys.ap_bind(g, Arc::new(Summer));
//! for i in 0..4 {
//!     sys.store_u32(base + (sync::BODY_OFFSET + 4 * i) as u64, 10);
//! }
//! sys.write_ctrl(base, sync::PARAM, 4);
//! sys.activate(base, 1);
//! sys.wait_done(base);
//! assert_eq!(sys.read_ctrl(base, sync::RESULT), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hosttime;
pub mod paging;
mod state;
mod stats;
mod system;

pub use ap_cpu::ExecMode;
pub use config::{CommMode, RadramConfig, ServiceMode};
pub use hosttime::take_kernel_host_secs;
pub use stats::SystemStats;
pub use system::{
    force_sanitize, force_sequential, set_force_sanitize, set_force_sequential, PageActivation,
    RaceAudit, System,
};
