//! Active-Page swapping and replacement costs (paper, Section 10).
//!
//! "Of particular concern is the high cost of swapping Active Pages to and
//! from disk. Current FPGA technologies take 100s of milliseconds to
//! reconfigure. New technologies, however, promise to reduce these times by
//! several orders of magnitude." The paper's Section 6 anticipates
//! Active-Page replacement costing "2-4 times larger than for conventional
//! pages due to reconfiguration time" (and notes that pages which do not
//! use Active-Page functions do not pay it).
//!
//! This module models that trade-off: a 1998-class disk, the 512 KB
//! superpage transfer, and a configurable reconfiguration time, plus an LRU
//! frame simulator that plays virtual-page reference traces against a
//! limited number of physical Active-Page frames.

/// Cost parameters for swapping one 512 KB superpage.
///
/// # Examples
///
/// ```
/// use radram::paging::SwapModel;
///
/// let m = SwapModel::fpga_1998();
/// // FPGA-era reconfiguration makes Active-Page replacement 2-4x a
/// // conventional superpage fault, as the paper anticipates.
/// let ratio = m.active_fault_cycles() as f64 / m.conventional_fault_cycles() as f64;
/// assert!((2.0..=4.0).contains(&ratio), "ratio {ratio}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapModel {
    /// Page size in bytes (512 KB superpages).
    pub page_bytes: u64,
    /// Disk seek + rotational latency in cycles (ns at 1 GHz).
    pub disk_seek: u64,
    /// Disk streaming bandwidth in bytes per cycle (e.g. 0.02 = 20 MB/s).
    pub disk_bytes_per_cycle: f64,
    /// Reconfigurable-logic programming time in cycles.
    pub reconfig: u64,
}

impl SwapModel {
    /// A 1998-class disk (8 ms seek, 20 MB/s) with FPGA-era reconfiguration
    /// ("100s of milliseconds" — we take 100 ms as the optimistic end).
    pub fn fpga_1998() -> Self {
        SwapModel {
            page_bytes: 512 * 1024,
            disk_seek: 8_000_000,
            disk_bytes_per_cycle: 0.02,
            reconfig: 100_000_000,
        }
    }

    /// The same machine with a DPGA-class part (paper Section 10's "new
    /// technologies" — reconfiguration cut by two orders of magnitude).
    pub fn dpga_future() -> Self {
        SwapModel { reconfig: 1_000_000, ..Self::fpga_1998() }
    }

    /// Cycles to transfer one page to or from disk.
    pub fn transfer_cycles(&self) -> u64 {
        (self.page_bytes as f64 / self.disk_bytes_per_cycle) as u64
    }

    /// Cycles to fault a *conventional* superpage: write the victim, read
    /// the new page (two seeks, two transfers).
    pub fn conventional_fault_cycles(&self) -> u64 {
        2 * (self.disk_seek + self.transfer_cycles())
    }

    /// Cycles to fault an *Active* superpage: the conventional cost plus
    /// reprogramming the subarray's logic for the incoming page's group.
    pub fn active_fault_cycles(&self) -> u64 {
        self.conventional_fault_cycles() + self.reconfig
    }
}

impl Default for SwapModel {
    fn default() -> Self {
        Self::fpga_1998()
    }
}

/// Outcome of replaying a reference trace against limited frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingReport {
    /// References replayed.
    pub references: u64,
    /// Faults taken.
    pub faults: u64,
    /// Total fault cycles for conventional superpages.
    pub conventional_cycles: u64,
    /// Total fault cycles for Active Pages (adds reconfiguration per fault
    /// on pages that use Active-Page functions).
    pub active_cycles: u64,
}

impl PagingReport {
    /// Fault rate in `[0, 1]`.
    pub fn fault_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.faults as f64 / self.references as f64
        }
    }

    /// Replacement-cost ratio Active/conventional (the paper's 2–4×).
    pub fn overhead_ratio(&self) -> f64 {
        if self.conventional_cycles == 0 {
            1.0
        } else {
            self.active_cycles as f64 / self.conventional_cycles as f64
        }
    }
}

/// An LRU physical-frame pool for superpages.
///
/// # Examples
///
/// ```
/// use radram::paging::{LruFrames, SwapModel};
///
/// // Four frames, a cyclic trace over five pages: every reference faults.
/// let trace: Vec<u32> = (0..40).map(|i| i % 5).collect();
/// let report = LruFrames::new(4).replay(&trace, &SwapModel::fpga_1998(), true);
/// assert_eq!(report.faults, 40);
/// assert!(report.overhead_ratio() > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct LruFrames {
    frames: Vec<u32>,
    capacity: usize,
}

impl LruFrames {
    /// Creates an empty pool of `capacity` physical frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "at least one frame is required");
        LruFrames { frames: Vec::with_capacity(capacity), capacity }
    }

    /// Touches one virtual page; returns `true` on a fault.
    pub fn touch(&mut self, page: u32) -> bool {
        if let Some(pos) = self.frames.iter().position(|&p| p == page) {
            let p = self.frames.remove(pos);
            self.frames.push(p);
            return false;
        }
        if self.frames.len() == self.capacity {
            self.frames.remove(0);
        }
        self.frames.push(page);
        true
    }

    /// Replays a reference trace, accumulating fault costs under `model`.
    /// `uses_functions` marks whether the faulting pages carry bound
    /// Active-Page functions (pages that do not "do not incur this cost").
    pub fn replay(
        mut self,
        trace: &[u32],
        model: &SwapModel,
        uses_functions: bool,
    ) -> PagingReport {
        let mut report = PagingReport {
            references: trace.len() as u64,
            faults: 0,
            conventional_cycles: 0,
            active_cycles: 0,
        };
        for &page in trace {
            if self.touch(page) {
                report.faults += 1;
                report.conventional_cycles += model.conventional_fault_cycles();
                report.active_cycles += if uses_functions {
                    model.active_fault_cycles()
                } else {
                    model.conventional_fault_cycles()
                };
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_replacement_is_two_to_four_times_conventional() {
        let m = SwapModel::fpga_1998();
        let ratio = m.active_fault_cycles() as f64 / m.conventional_fault_cycles() as f64;
        assert!((2.0..=4.0).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn dpga_reconfiguration_nearly_closes_the_gap() {
        let m = SwapModel::dpga_future();
        let ratio = m.active_fault_cycles() as f64 / m.conventional_fault_cycles() as f64;
        assert!(ratio < 1.05, "got {ratio}");
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let mut f = LruFrames::new(2);
        assert!(f.touch(1));
        assert!(f.touch(2));
        assert!(!f.touch(1)); // hit, refreshed
        assert!(f.touch(3)); // evicts 2
        assert!(!f.touch(1));
        assert!(f.touch(2)); // 2 was the victim
    }

    #[test]
    fn working_set_within_frames_never_faults_again() {
        let trace: Vec<u32> = (0..100).map(|i| i % 4).collect();
        let r = LruFrames::new(4).replay(&trace, &SwapModel::fpga_1998(), true);
        assert_eq!(r.faults, 4, "only compulsory faults");
        assert!(r.fault_rate() < 0.05);
    }

    #[test]
    fn pages_without_functions_skip_reconfiguration() {
        let trace: Vec<u32> = (0..30).map(|i| i % 6).collect();
        let plain = LruFrames::new(3).replay(&trace, &SwapModel::fpga_1998(), false);
        assert!((plain.overhead_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        LruFrames::new(0);
    }
}
