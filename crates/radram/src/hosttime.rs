//! Thread-local accumulation of *host* wall-clock time spent inside
//! simulated kernel regions.
//!
//! The two-tier benchmark (`BENCH_fastmode.json`) compares how long the
//! simulator itself takes to execute a kernel in fast vs accurate mode.
//! Workload generation and RAM population are identical in both tiers, so
//! they must be excluded from that measurement: [`crate::System::kernel_start`]
//! stamps a host timestamp and [`crate::System::kernel_region`] adds the
//! elapsed host seconds here. Harnesses drain the total with
//! [`take_kernel_host_secs`] after a run.
//!
//! Host seconds never enter a `RunReport` — simulation results stay
//! bit-deterministic; this is a side channel for wall-clock benchmarking
//! only. It is thread-local so engine workers running jobs concurrently do
//! not contaminate each other.

use std::cell::Cell;

thread_local! {
    static KERNEL_SECS: Cell<f64> = const { Cell::new(0.0) };
}

/// Adds `secs` of host time to this thread's kernel-region total.
pub(crate) fn add_kernel_secs(secs: f64) {
    KERNEL_SECS.with(|c| c.set(c.get() + secs));
}

/// Returns and resets the host seconds this thread has spent inside kernel
/// regions since the last call (zero if none).
pub fn take_kernel_host_secs() -> f64 {
    KERNEL_SECS.with(|c| c.replace(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_drains() {
        assert_eq!(take_kernel_host_secs(), 0.0);
        add_kernel_secs(0.25);
        add_kernel_secs(0.5);
        assert_eq!(take_kernel_host_secs(), 0.75);
        assert_eq!(take_kernel_host_secs(), 0.0);
    }

    #[test]
    fn is_thread_local() {
        add_kernel_secs(1.0);
        let other = std::thread::spawn(take_kernel_host_secs).join().unwrap();
        assert_eq!(other, 0.0);
        assert_eq!(take_kernel_host_secs(), 1.0);
    }
}
