//! Runtime state of the Active-Page memory system.

use active_pages::{CopyRequest, ExecEvent};

/// A blocked execution waiting on processor-mediated communication.
#[derive(Debug, Clone)]
pub(crate) struct BlockedExec {
    /// Cycle at which the page raised its interrupt.
    pub raised_at: u64,
    /// The outstanding non-local references.
    pub requests: Vec<CopyRequest>,
    /// Events still to run once the processor services the requests.
    pub rest: Vec<ExecEvent>,
    /// True when the page blocked *before* computing (pre-declared
    /// references): the function body must run after the copies land.
    pub run_on_service: bool,
}

/// Per-page runtime state.
#[derive(Debug, Clone, Default)]
pub(crate) struct PageState {
    /// The page's logic is busy until this cycle.
    pub busy_until: u64,
    /// Set when the page blocked on inter-page references. The page does
    /// not make progress until the processor services it.
    pub blocked: Option<BlockedExec>,
}

impl PageState {
    /// True if the page cannot accept processor accesses at `now`: either
    /// its logic is still running or it is blocked on the processor.
    pub fn busy_at(&self, now: u64) -> bool {
        self.blocked.is_some() || self.busy_until > now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_logic() {
        let mut st = PageState::default();
        assert!(!st.busy_at(0));
        st.busy_until = 100;
        assert!(st.busy_at(99));
        assert!(!st.busy_at(100));
        st.busy_until = 0;
        st.blocked = Some(BlockedExec {
            raised_at: 5,
            requests: vec![],
            rest: vec![],
            run_on_service: false,
        });
        assert!(st.busy_at(1_000_000));
    }
}
