//! Whole-system statistics.

use ap_cpu::CpuStats;
use std::fmt;

/// Counters describing one simulated run.
///
/// `non_overlap_cycles` is the paper's processor-memory non-overlap metric
/// (Section 7.2): cycles the processor spent stalled waiting for Active-Page
/// computation. Figure 4 plots it as a percentage of total cycles.
///
/// # Examples
///
/// ```
/// use radram::{RadramConfig, System};
///
/// let sys = System::radram(RadramConfig::reference());
/// let s = sys.stats();
/// assert_eq!(s.activations, 0);
/// assert_eq!(s.non_overlap_fraction(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SystemStats {
    /// Processor counters (cycles, instructions, cache behaviour).
    pub cpu: CpuStats,
    /// Cycles the processor stalled waiting on busy Active Pages.
    pub non_overlap_cycles: u64,
    /// Page activations dispatched.
    pub activations: u64,
    /// Inter-page interrupt batches serviced by the processor.
    pub interrupt_batches: u64,
    /// Individual inter-page copy requests serviced.
    pub interpage_copies: u64,
    /// Bytes moved by processor-mediated copies.
    pub copied_bytes: u64,
    /// `AP_bind` calls that replaced an existing binding.
    pub rebinds: u64,
    /// Total reconfigurable-logic busy time scheduled, in CPU cycles
    /// (run segments times the logic divisor, summed over activations).
    pub logic_busy_cycles: u64,
    /// Error-severity race diagnostics (RC202/RC204/RC205) accumulated by
    /// the access sanitizer. Zero unless `AP_SANITIZE` finds a violation.
    pub race_errors: u64,
    /// Warning-severity race diagnostics from the sanitizer.
    pub race_warnings: u64,
}

impl SystemStats {
    /// Non-overlap stall as a fraction of total cycles (Figure 4's y-axis).
    pub fn non_overlap_fraction(&self) -> f64 {
        if self.cpu.cycles == 0 {
            0.0
        } else {
            self.non_overlap_cycles as f64 / self.cpu.cycles as f64
        }
    }
}

impl fmt::Display for SystemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.cpu)?;
        write!(
            f,
            "active pages: {} activations, {:.1}% non-overlap, {} interrupts ({} copies, {} bytes), {} rebinds",
            self.activations,
            self.non_overlap_fraction() * 100.0,
            self.interrupt_batches,
            self.interpage_copies,
            self.copied_bytes,
            self.rebinds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_zero_cycles() {
        assert_eq!(SystemStats::default().non_overlap_fraction(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", SystemStats::default()).is_empty());
    }
}
