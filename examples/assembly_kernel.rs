//! Methodology validation: the same scan kernel as SS-lite assembly
//! (instruction-level execution, SimpleScalar-style) and as an instrumented
//! kernel, on the same 1 GHz reference machine. The cycle counts should be
//! close — that agreement is what justifies driving the paper's evaluation
//! with instrumented kernels.
//!
//! Run with: `cargo run --release --example assembly_kernel`

use ap_cpu::{Cpu, CpuConfig};
use ap_mem::VAddr;
use ap_risc::Machine;

const WORDS: u32 = 65_536; // 256 KB: misses in L1, streams from L2/DRAM

fn main() {
    let asm = format!(
        r#"
            lui  r1, 0x10           ; base
            addi r3, r0, 0          ; i
            lui  r4, {hi}
            addi r4, r4, {lo}
            addi r6, r0, 42         ; key
            addi r7, r0, 0          ; count
        loop:
            lw   r5, (r1)
            bne  r5, r6, skip
            addi r7, r7, 1
        skip:
            addi r1, r1, 4
            addi r3, r3, 1
            blt  r3, r4, loop
            halt
        "#,
        hi = WORDS >> 16,
        lo = WORDS & 0xFFFF
    );
    let mut m = Machine::load(CpuConfig::reference(), 16 << 20, &asm).expect("assembles");
    for i in 0..WORDS {
        m.cpu_mut().ram.write_u32(VAddr::new(0x10_0000 + 4 * i as u64), i % 97);
    }
    m.run(10_000_000).expect("halts");

    let mut cpu = Cpu::new(CpuConfig::reference(), 16 << 20);
    for i in 0..WORDS {
        cpu.ram.write_u32(VAddr::new(0x10_0000 + 4 * i as u64), i % 97);
    }
    let mut count = 0u32;
    for i in 0..WORDS as u64 {
        let v = cpu.load_u32(VAddr::new(0x10_0000 + 4 * i));
        if cpu.branch(1, v == 42) {
            count += 1;
            cpu.alu(1);
        }
        cpu.alu(2);
        cpu.branch(0, i + 1 < WORDS as u64);
    }

    println!("scan of {WORDS} words for key 42");
    println!("  assembly (SS-lite)   : {:>10} cycles, count {}", m.cycles(), m.reg(7));
    println!("  instrumented kernel  : {:>10} cycles, count {}", cpu.now(), count);
    println!(
        "  ratio                : {:.3} (instruction-level vs instrumented)",
        m.cycles() as f64 / cpu.now() as f64
    );
    assert_eq!(m.reg(7), count);
}
