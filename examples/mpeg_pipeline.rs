//! The full MPEG decode pipeline extension (paper Sections 5.2 and 10):
//! entropy (RLE + VLC) decoding inside the memory system, inverse DCT on
//! the processor, correction application back inside the memory system.
//!
//! Run with: `cargo run --release --example mpeg_pipeline`

use ap_apps::{mpeg_decode, speedup, SystemKind};
use ap_workloads::mpeg::CodedFrame;
use radram::RadramConfig;

fn main() {
    // Show what the compressed input looks like.
    let f = CodedFrame::generate(9, 64, 32, 0.5);
    let nonzero: usize = f.blocks.iter().map(|b| b.iter().filter(|&&c| c != 0).count()).sum();
    println!(
        "sample frame: {} 8x8 blocks, {} nonzero coefficients ({:.1} per block)",
        f.blocks.len(),
        nonzero,
        nonzero as f64 / f.blocks.len() as f64
    );
    println!();

    let cfg = RadramConfig::reference();
    for pages in [2.0, 8.0, 16.0] {
        let c = mpeg_decode::run(SystemKind::Conventional, pages, &cfg);
        let r = mpeg_decode::run(SystemKind::Radram, pages, &cfg);
        assert_eq!(c.checksum, r.checksum, "decoded frames must match bit-for-bit");
        println!(
            "{pages:>5} pages: conventional {:>10} cycles, RADram {:>10} cycles -> {:.2}x",
            c.kernel_cycles,
            r.kernel_cycles,
            speedup(&c, &r)
        );
    }
    println!();
    println!("the IDCT stage stays on the processor in both systems (the paper's");
    println!("partition), so the pipeline crosses over a few pages in, then scales.");
}
