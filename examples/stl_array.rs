//! The STL array template class with a mixed operation script, including
//! the re-binding cost the paper anticipates when a group's functions are
//! swapped ("re-binding may be necessary to make room for new functions").
//!
//! Run with: `cargo run --release --example stl_array`

use ap_apps::array::run_script;
use ap_apps::{speedup, SystemKind};
use ap_workloads::array_ops::Script;
use radram::RadramConfig;

fn main() {
    let cfg = RadramConfig::reference();
    let script = Script::generate(42, 400_000, 24);
    println!(
        "mixed script: {} ops over a {}-element array (~{:.1} pages)",
        script.ops.len(),
        script.initial_len,
        script.initial_len as f64 / ap_apps::array::ELEMS_PER_PAGE as f64
    );

    let conv = run_script(&script, SystemKind::Conventional, &cfg);
    let rad = run_script(&script, SystemKind::Radram, &cfg);
    assert_eq!(conv.checksum, rad.checksum, "array contents must match");

    println!("conventional : {:>12} cycles", conv.kernel_cycles);
    println!("RADram       : {:>12} cycles", rad.kernel_cycles);
    println!("speedup      : {:.2}x", speedup(&conv, &rad));
    println!(
        "activations {} | re-binds {} (each reconfigures every page in the group)",
        rad.stats.activations, rad.stats.rebinds
    );
    let reference = script.reference_results();
    println!("final length {} (reference agrees: {})", reference.final_len, reference.final_len);
}
