//! Sparse matrix kernels for scientific codes: the compare-gather-compute
//! partition. Active Pages merge index streams and gather matched operands;
//! the processor runs the floating point at full speed.
//!
//! Run with: `cargo run --release --example sparse_solver`

use ap_apps::{matrix, speedup, SystemKind};
use ap_workloads::sparse::{row_fill_cv, SparseMatrix};
use radram::RadramConfig;

fn main() {
    let cfg = RadramConfig::reference();

    let fe = SparseMatrix::finite_element(1, 2000, 48);
    let sx = SparseMatrix::simplex_tableau(1, 2000, 256);
    println!("workload character (coefficient of variation of row fill):");
    println!("  finite-element (boeing-like): {:.2}", row_fill_cv(&fe));
    println!("  simplex tableau             : {:.2}", row_fill_cv(&sx));
    println!();

    for variant in [matrix::MatrixVariant::Simplex, matrix::MatrixVariant::Boeing] {
        let conv = matrix::run(variant, SystemKind::Conventional, 8.0, &cfg);
        let rad = matrix::run(variant, SystemKind::Radram, 8.0, &cfg);
        assert_eq!(conv.checksum, rad.checksum, "dot products must be bit-identical");
        println!(
            "{:<15} speedup {:.2}x  (conv {} cycles, RADram {} cycles, stall {:.1}%)",
            variant.app_name(),
            speedup(&conv, &rad),
            conv.kernel_cycles,
            rad.kernel_cycles,
            rad.non_overlap_fraction() * 100.0
        );
    }
    println!();
    println!("note the low stall percentages: the processor-centric partition keeps");
    println!("the CPU busy multiplying while the pages gather the next operands.");
}
