//! DNA sequence alignment: the dynamic-programming largest-common-
//! subsequence workload. The table fills inside the memory system as a
//! wavefront across pages; the processor mediates page boundaries and
//! backtracks the final alignment.
//!
//! Run with: `cargo run --release --example bio_sequence`

use ap_apps::{lcs, speedup, SystemKind};
use ap_workloads::dna::SequencePair;
use radram::RadramConfig;

fn main() {
    let cfg = RadramConfig::reference();
    let pages = 4.0;

    // Peek at the kind of data the benchmark generates.
    let pair = SequencePair::generate(7, 60, 0.2);
    println!("example sequences (len 60, 20% mutation):");
    println!("  A: {}", String::from_utf8_lossy(&pair.a));
    println!("  B: {}", String::from_utf8_lossy(&pair.b));
    println!("  LCS length: {}", pair.lcs_length());
    println!();

    println!("running the full benchmark at {pages} pages of DP table...");
    let conv = lcs::run(SystemKind::Conventional, pages, &cfg);
    let rad = lcs::run(SystemKind::Radram, pages, &cfg);
    assert_eq!(conv.checksum, rad.checksum, "alignments must match");

    println!("conventional : {:>12} cycles", conv.kernel_cycles);
    println!("RADram       : {:>12} cycles", rad.kernel_cycles);
    println!("speedup      : {:.2}x", speedup(&conv, &rad));
    println!(
        "wavefront activations: {} (pages x strips), non-overlap {:.1}%",
        rad.stats.activations,
        rad.non_overlap_fraction() * 100.0
    );
}
