//! Quickstart: define an Active-Page function, bind it to a page group on a
//! RADram system, activate pages with ordinary stores, and read results —
//! the full programming model of the paper in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use active_pages::{sync, ActivePageMemory, Execution, GroupId, PageFunction, PageSlice};
use radram::{RadramConfig, System};
use std::sync::Arc;

/// An Active-Page function that counts set bits across the page body —
/// a toy "population count" data-manipulation primitive.
#[derive(Debug)]
struct Popcount;

impl PageFunction for Popcount {
    fn name(&self) -> &'static str {
        "popcount"
    }

    fn logic_elements(&self) -> u32 {
        96 // a 32-bit popcount tree plus a stream counter fits easily
    }

    fn execute(&self, page: &mut PageSlice<'_>) -> Execution {
        let words = page.ctrl(sync::PARAM) as usize;
        let mut ones = 0u32;
        for w in 0..words {
            ones += page.read_u32(sync::BODY_OFFSET + 4 * w).count_ones();
        }
        page.set_ctrl(sync::RESULT, ones);
        page.set_ctrl(sync::STATUS, sync::DONE);
        Execution::run(words as u64) // one 32-bit word per logic cycle
    }
}

fn main() {
    // A RADram machine with the paper's Table 1 reference parameters.
    let mut sys = System::radram(RadramConfig::reference().with_ram_capacity(64 << 20));

    // AP_alloc: four Active Pages in one group; AP_bind: attach the circuit.
    let group = GroupId::new(0);
    let base = sys.ap_alloc_pages(group, 4);
    sys.ap_bind(group, Arc::new(Popcount));

    // Fill each page's body with data through ordinary (timed) stores.
    let words_per_page = 4096;
    for p in 0..4u64 {
        let pb = base + p * active_pages::PAGE_SIZE as u64;
        for w in 0..words_per_page {
            sys.store_u32(pb + (sync::BODY_OFFSET + 4 * w) as u64, 0xF0F0_0F0F ^ w as u32);
        }
    }

    // Activate all four pages; they compute in parallel inside the memory.
    let t0 = sys.now();
    for p in 0..4u64 {
        let pb = base + p * active_pages::PAGE_SIZE as u64;
        sys.write_ctrl(pb, sync::PARAM, words_per_page as u32);
        sys.activate(pb, 1);
    }

    // Poll the synchronization variables and sum the per-page results.
    let mut total = 0u64;
    for p in 0..4u64 {
        let pb = base + p * active_pages::PAGE_SIZE as u64;
        sys.wait_done(pb);
        total += sys.read_ctrl(pb, sync::RESULT) as u64;
    }
    let elapsed = sys.now() - t0;

    let stats = sys.stats();
    println!("popcount over 4 Active Pages: {total} set bits");
    println!("kernel time: {elapsed} cycles ({:.1} us at 1 GHz)", elapsed as f64 / 1000.0);
    println!(
        "activations: {}, processor stalled {:.1}% of the kernel",
        stats.activations,
        100.0 * stats.non_overlap_cycles as f64 / elapsed as f64
    );
}
