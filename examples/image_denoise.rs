//! Image denoising with the median-filter application: the paper's flagship
//! memory-centric workload. Runs the same noisy image through the
//! conventional system and the RADram Active-Page system and compares.
//!
//! Run with: `cargo run --release --example image_denoise`

use ap_apps::{median, speedup, SystemKind};
use radram::RadramConfig;

fn main() {
    let cfg = RadramConfig::reference();
    let pages = 4.0; // a 512x1000 16-bit image

    println!("3x3 median filter, {pages} Active Pages of image rows");
    let conv = median::run(SystemKind::Conventional, pages, &cfg);
    let rad = median::run(SystemKind::Radram, pages, &cfg);

    assert_eq!(conv.checksum, rad.checksum, "the two systems must agree pixel-for-pixel");

    println!("conventional : {:>12} cycles (kernel)", conv.kernel_cycles);
    println!("RADram       : {:>12} cycles (kernel)", rad.kernel_cycles);
    println!("kernel speedup: {:.1}x", speedup(&conv, &rad));
    println!(
        "with image I/O (median-total): {:.1}x ({} vs {} cycles)",
        conv.total_cycles as f64 / rad.total_cycles as f64,
        conv.total_cycles,
        rad.total_cycles
    );
    println!(
        "RADram dispatched {} page activations; stalls covered {:.1}% of the kernel",
        rad.stats.activations,
        rad.non_overlap_fraction() * 100.0
    );
}
