//! End-to-end integration: every evaluation kernel computes identical
//! results on both memory systems, and the partitions behave the way the
//! paper reports.

use ap_apps::{speedup, App, SystemKind};
use radram::RadramConfig;

fn both(app: App, pages: f64) -> (ap_apps::RunReport, ap_apps::RunReport) {
    let cfg = RadramConfig::reference();
    let c = app.run(SystemKind::Conventional, pages, &cfg);
    let r = app.run(SystemKind::Radram, pages, &cfg);
    (c, r)
}

#[test]
fn every_kernel_agrees_functionally_at_small_size() {
    for app in App::ALL {
        let (c, r) = both(app, 0.4);
        assert_eq!(c.checksum, r.checksum, "{} diverged at sub-page size", app.name());
    }
}

#[test]
fn every_kernel_agrees_functionally_across_pages() {
    for app in App::ALL {
        let (c, r) = both(app, 2.6);
        assert_eq!(c.checksum, r.checksum, "{} diverged at multi-page size", app.name());
    }
}

#[test]
fn radram_wins_on_every_kernel_at_eight_pages() {
    // Figure 3: by eight pages every kernel is in (or past) the scalable
    // region and RADram is ahead.
    for app in App::ALL {
        let (c, r) = both(app, 8.0);
        let s = speedup(&c, &r);
        assert!(s > 1.0, "{}: speedup {s:.2} at 8 pages", app.name());
    }
}

#[test]
fn memory_centric_kernels_scale_strongly() {
    for app in [App::Database, App::Median, App::ArrayInsert] {
        let (c, r) = both(app, 8.0);
        let s = speedup(&c, &r);
        assert!(s > 3.0, "{}: expected strong scaling, got {s:.2}", app.name());
    }
}

#[test]
fn processor_centric_kernels_reach_high_overlap() {
    // Figure 4: matrix reaches near-complete processor-memory overlap.
    for app in [App::MatrixSimplex, App::MatrixBoeing] {
        let (_c, r) = both(app, 8.0);
        assert!(
            r.non_overlap_fraction() < 0.5,
            "{}: stalled {:.0}% — the gather partition should keep the CPU busy",
            app.name(),
            r.non_overlap_fraction() * 100.0
        );
    }
}

#[test]
fn array_delete_is_adaptive_in_the_sub_page_region() {
    let (c, r) = both(App::ArrayDelete, 0.3);
    // Below one page the adaptive algorithm falls back to the processor, so
    // both systems run the same code and the speedup is exactly 1.
    assert_eq!(r.stats.activations, 0);
    assert!((speedup(&c, &r) - 1.0).abs() < 0.05);
}

#[test]
fn radram_functions_as_conventional_memory_with_negligible_degradation() {
    // "RADram can also function as a conventional memory system with
    // negligible performance degradation": run the conventional kernel code
    // against a RADram system with no Active Pages allocated.
    let cfg = RadramConfig::reference();
    let conv = App::Database.run(SystemKind::Conventional, 1.0, &cfg);
    // A RADram machine whose pages are never used behaves identically for
    // ordinary loads/stores; compare plain-memory timing between the two
    // System constructors directly.
    let mut plain = radram::System::conventional_with(cfg.clone());
    let mut rad = radram::System::radram(cfg);
    let a = plain.ram_alloc(1 << 16, 64);
    let b = rad.ram_alloc(1 << 16, 64);
    for i in 0..8192u64 {
        plain.store_u32(a + 4 * i, i as u32);
        rad.store_u32(b + 4 * i, i as u32);
    }
    for i in 0..8192u64 {
        assert_eq!(plain.load_u32(a + 4 * i), rad.load_u32(b + 4 * i));
    }
    assert_eq!(plain.now(), rad.now(), "unused Active-Page support must cost nothing");
    let _ = conv;
}

#[test]
fn dispatch_times_are_small_fractions_of_kernels() {
    // T_A is microseconds while kernels are milliseconds.
    for app in [App::Database, App::Median] {
        let (_c, r) = both(app, 4.0);
        assert!(r.dispatch_cycles > 0);
        assert!(
            r.dispatch_cycles < r.kernel_cycles / 10,
            "{}: dispatch {} vs kernel {}",
            app.name(),
            r.dispatch_cycles,
            r.kernel_cycles
        );
    }
}
