//! Edge-case integration tests: boundary positions, minimal sizes, and
//! degenerate inputs that the sweeps never touch.

use active_pages::{sync, ActivePageMemory, GroupId, PAGE_SIZE};
use ap_apps::array::{run_script, ELEMS_PER_PAGE};
use ap_apps::{speedup, App, SystemKind};
use ap_workloads::array_ops::{ArrayOp, Script};
use radram::{RadramConfig, System};

fn cfg() -> RadramConfig {
    RadramConfig::reference()
}

#[test]
fn array_insert_at_index_zero_and_end() {
    // Hand-built script hitting both extremes across a page boundary.
    let n = ELEMS_PER_PAGE + 10;
    let script = Script {
        initial_len: n,
        ops: vec![
            ArrayOp::Insert { index: 0, value: 111 },
            ArrayOp::Insert { index: n + 1, value: 222 }, // current end
            ArrayOp::Count { value: 111 },
            ArrayOp::Count { value: 222 },
        ],
    };
    let c = run_script(&script, SystemKind::Conventional, &cfg());
    let r = run_script(&script, SystemKind::Radram, &cfg());
    assert_eq!(c.checksum, r.checksum);
}

#[test]
fn array_delete_first_and_last() {
    let n = ELEMS_PER_PAGE + 5;
    let script = Script {
        initial_len: n,
        ops: vec![
            ArrayOp::Delete { index: 0 },
            ArrayOp::Delete { index: n - 2 }, // last element after one delete
            ArrayOp::Count { value: 7 },
        ],
    };
    let c = run_script(&script, SystemKind::Conventional, &cfg());
    let r = run_script(&script, SystemKind::Radram, &cfg());
    assert_eq!(c.checksum, r.checksum);
}

#[test]
fn array_insert_exactly_at_page_boundary() {
    // The hole lands on the first slot of page 1.
    let n = 2 * ELEMS_PER_PAGE;
    let script = Script {
        initial_len: n,
        ops: vec![
            ArrayOp::Insert { index: ELEMS_PER_PAGE, value: 999 },
            ArrayOp::Count { value: 999 },
        ],
    };
    let c = run_script(&script, SystemKind::Conventional, &cfg());
    let r = run_script(&script, SystemKind::Radram, &cfg());
    assert_eq!(c.checksum, r.checksum);
}

#[test]
fn array_insert_spills_into_a_fresh_page() {
    // A completely full page: the insert's carry must open page 2.
    let script = Script {
        initial_len: ELEMS_PER_PAGE,
        ops: vec![ArrayOp::Insert { index: 3, value: 42 }, ArrayOp::Count { value: 42 }],
    };
    let c = run_script(&script, SystemKind::Conventional, &cfg());
    let r = run_script(&script, SystemKind::Radram, &cfg());
    assert_eq!(c.checksum, r.checksum);
}

#[test]
fn smallest_problem_sizes_still_agree() {
    for app in App::ALL {
        let c = app.run(SystemKind::Conventional, 0.01, &cfg());
        let r = app.run(SystemKind::Radram, 0.01, &cfg());
        assert_eq!(c.checksum, r.checksum, "{} at minimum size", app.name());
    }
}

#[test]
fn repeated_activations_reuse_pages_correctly() {
    // Two consecutive find runs on the same system instance via the App
    // entry points use fresh systems, so exercise reuse manually.
    let mut sys = System::radram(cfg().with_ram_capacity(8 << 20));
    let g = GroupId::new(0);
    let base = sys.ap_alloc_pages(g, 1);
    sys.ap_bind(g, std::sync::Arc::new(ap_apps::array::ArrayFindFn));
    for w in 0..100u64 {
        sys.store_u32(base + (sync::BODY_OFFSET as u64 + 4 * w), (w % 5) as u32);
    }
    for key in 0..5u32 {
        sys.write_ctrl(base, sync::PARAM, 0);
        sys.write_ctrl(base, sync::PARAM + 1, 100);
        sys.write_ctrl(base, sync::PARAM + 2, key);
        sys.activate(base, 3);
        sys.wait_done(base);
        assert_eq!(sys.read_ctrl(base, sync::RESULT), 20, "key {key}");
    }
    assert_eq!(sys.stats().activations, 5);
}

#[test]
fn empty_and_all_matching_database_queries() {
    // The generated book guarantees >= 1 match for its query; also verify a
    // page full of identical names via the raw circuit path.
    use active_pages::IdealExecutor;
    use ap_apps::database::DatabaseSearchFn;
    use ap_workloads::database::RECORD_BYTES;

    let mut exec = IdealExecutor::new(1);
    // 50 records, all with the same 16-byte name field.
    for r in 0..50 {
        let off = sync::BODY_OFFSET + r * RECORD_BYTES;
        exec.page_mut(0)[off..off + 4].copy_from_slice(b"same");
    }
    exec.write_u32(0, sync::ctrl_offset(sync::PARAM), 50);
    exec.write_u32(0, sync::ctrl_offset(sync::PARAM + 1), u32::from_le_bytes(*b"same"));
    exec.write_u32(0, sync::ctrl_offset(sync::CMD), 1);
    exec.activate(&DatabaseSearchFn, 0);
    assert_eq!(exec.read_u32(0, sync::ctrl_offset(sync::RESULT)), 50);

    // And a key that matches nothing.
    exec.write_u32(0, sync::ctrl_offset(sync::PARAM + 1), u32::from_le_bytes(*b"none"));
    exec.write_u32(0, sync::ctrl_offset(sync::CMD), 1);
    exec.activate(&DatabaseSearchFn, 0);
    assert_eq!(exec.read_u32(0, sync::ctrl_offset(sync::RESULT)), 0);
}

#[test]
fn sub_page_problems_use_exactly_one_page_group() {
    let r = App::Database.run(SystemKind::Radram, 0.1, &cfg());
    assert_eq!(r.stats.activations, 1, "a sub-page problem needs one activation");
}

#[test]
fn ap_alloc_rounds_up_and_aligns() {
    let mut sys = System::radram(cfg().with_ram_capacity(16 << 20));
    let g = GroupId::new(3);
    let base = sys.ap_alloc(g, PAGE_SIZE + 1); // rounds to two pages
    assert_eq!(base.get() % PAGE_SIZE as u64, 0);
    assert_eq!(sys.group_len(g), 2);
}

#[test]
fn radram_never_loses_to_itself_across_configs() {
    // Faster logic can never make a kernel slower (sanity on the divisor).
    let fast = App::Median.run(SystemKind::Radram, 1.0, &cfg().with_logic_divisor(2));
    let slow = App::Median.run(SystemKind::Radram, 1.0, &cfg().with_logic_divisor(50));
    assert!(fast.kernel_cycles < slow.kernel_cycles);
}

#[test]
fn speedup_guard_rejects_cross_app_comparison() {
    let a = App::Database.run(SystemKind::Conventional, 0.05, &cfg());
    let b = App::Median.run(SystemKind::Radram, 0.05, &cfg());
    assert!(std::panic::catch_unwind(|| speedup(&a, &b)).is_err());
}
