//! Property-based tests: for arbitrary workloads, the RADram partition and
//! the conventional implementation must compute identical results.

use ap_apps::array::run_script;
use ap_apps::{App, SystemKind};
use ap_workloads::array_ops::Script;
use proptest::prelude::*;
use radram::RadramConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary mixed array scripts (with re-binding) agree across systems
    /// and with the plain-`Vec` reference.
    #[test]
    fn array_scripts_agree(seed in 0u64..1000, len in 100usize..5000, ops in 1usize..20) {
        let script = Script::generate(seed, len, ops);
        let cfg = RadramConfig::reference();
        let c = run_script(&script, SystemKind::Conventional, &cfg);
        let r = run_script(&script, SystemKind::Radram, &cfg);
        prop_assert_eq!(c.checksum, r.checksum);
        // And the script's own reference results must be reflected: the
        // final length is embedded in both digests, so equality with the
        // reference length is checked inside run_script's digesting.
        prop_assert_eq!(script.reference_results().final_len, script.final_len());
    }

    /// The database kernel counts correctly for arbitrary sub-page through
    /// multi-page sizes.
    #[test]
    fn database_counts_agree(pages in 0.05f64..3.0) {
        let cfg = RadramConfig::reference();
        let c = App::Database.run(SystemKind::Conventional, pages, &cfg);
        let r = App::Database.run(SystemKind::Radram, pages, &cfg);
        prop_assert_eq!(c.checksum, r.checksum);
    }

    /// MPEG frames of arbitrary size agree byte-for-byte (saturating MMX
    /// semantics are easy to get subtly wrong).
    #[test]
    fn mpeg_frames_agree(pages in 0.1f64..2.0) {
        let cfg = RadramConfig::reference();
        let c = App::MpegMmx.run(SystemKind::Conventional, pages, &cfg);
        let r = App::MpegMmx.run(SystemKind::Radram, pages, &cfg);
        prop_assert_eq!(c.checksum, r.checksum);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The LCS wavefront agrees with the conventional DP for arbitrary
    /// problem sizes spanning page boundaries.
    #[test]
    fn lcs_agrees(pages in 0.2f64..2.5) {
        let cfg = RadramConfig::reference();
        let c = App::DynProg.run(SystemKind::Conventional, pages, &cfg);
        let r = App::DynProg.run(SystemKind::Radram, pages, &cfg);
        prop_assert_eq!(c.checksum, r.checksum);
    }

    /// Sparse gathers agree bit-for-bit on both variants.
    #[test]
    fn matrix_agrees(pages in 0.1f64..2.0, boeing in proptest::bool::ANY) {
        let app = if boeing { App::MatrixBoeing } else { App::MatrixSimplex };
        let cfg = RadramConfig::reference();
        let c = app.run(SystemKind::Conventional, pages, &cfg);
        let r = app.run(SystemKind::Radram, pages, &cfg);
        prop_assert_eq!(c.checksum, r.checksum);
    }
}
