//! Shape tests for the regenerated figures: the qualitative claims of the
//! paper's evaluation must hold in the reproduction.

use ap_apps::{App, SystemKind};
use ap_bench::experiments;
use ap_bench::sweep::run_point;
use radram::RadramConfig;

#[test]
fn figure3_speedup_grows_through_the_scalable_region() {
    let cfg = RadramConfig::reference();
    for app in App::ALL {
        let s1 = run_point(app, 1.0, &cfg).speedup();
        let s8 = run_point(app, 8.0, &cfg).speedup();
        assert!(
            s8 > 1.3 * s1,
            "{}: speedup should grow with problem size ({s1:.2} -> {s8:.2})",
            app.name()
        );
    }
}

#[test]
fn figure4_matrix_non_overlap_falls_with_size() {
    let cfg = RadramConfig::reference();
    let small = run_point(App::MatrixSimplex, 1.0, &cfg).non_overlap_percent();
    let large = run_point(App::MatrixSimplex, 8.0, &cfg).non_overlap_percent();
    assert!(
        large < small,
        "matrix non-overlap should fall toward complete overlap ({small:.0}% -> {large:.0}%)"
    );
}

#[test]
fn figure4_array_primitives_keep_high_non_overlap() {
    // "for the array primitives ... the non-overlap percentage remains
    // relatively high" — they are memory-centric with little processor work.
    let cfg = RadramConfig::reference();
    let p = run_point(App::ArrayInsert, 4.0, &cfg);
    assert!(p.non_overlap_percent() > 80.0);
}

#[test]
fn figure8_zero_latency_helps_the_conventional_system() {
    // Cheaper misses shrink RADram's advantage on memory-bound kernels.
    let fast = RadramConfig::reference().with_miss_latency(0);
    let slow = RadramConfig::reference().with_miss_latency(600);
    let s_fast = run_point(App::Database, 4.0, &fast).speedup();
    let s_slow = run_point(App::Database, 4.0, &slow).speedup();
    assert!(
        s_slow > s_fast,
        "database speedup vs latency: {s_fast:.2} at 0ns, {s_slow:.2} at 600ns"
    );
}

#[test]
fn figure9_scalable_kernels_are_sensitive_to_logic_speed() {
    let fast = RadramConfig::reference().with_logic_divisor(2); // 500 MHz
    let slow = RadramConfig::reference().with_logic_divisor(100); // 10 MHz
    let s_fast = run_point(App::Database, 4.0, &fast).speedup();
    let s_slow = run_point(App::Database, 4.0, &slow).speedup();
    assert!(
        s_fast > 3.0 * s_slow,
        "database (scalable region) must track logic speed: {s_fast:.2} vs {s_slow:.2}"
    );
}

#[test]
fn figure9_saturated_kernels_are_less_sensitive() {
    // Matrix at 8 pages sits near saturation: the processor, not the logic,
    // is the bottleneck.
    let fast = RadramConfig::reference().with_logic_divisor(5);
    let slow = RadramConfig::reference().with_logic_divisor(20);
    let s_fast = run_point(App::MatrixSimplex, 8.0, &fast).speedup();
    let s_slow = run_point(App::MatrixSimplex, 8.0, &slow).speedup();
    let ratio = s_fast / s_slow;
    assert!(
        ratio < 3.0,
        "matrix near saturation should be comparatively insensitive (ratio {ratio:.2})"
    );
}

#[test]
fn figure5_radram_kernels_are_insensitive_to_l1_size() {
    // "all but one application was unaffected by the size of the level one
    // cache" for RADram kernels.
    for app in [App::Database, App::Median] {
        let small =
            app.run(SystemKind::Radram, 4.0, &RadramConfig::reference().with_l1d_size(32 * 1024));
        let large =
            app.run(SystemKind::Radram, 4.0, &RadramConfig::reference().with_l1d_size(256 * 1024));
        let ratio = small.kernel_cycles as f64 / large.kernel_cycles as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "{}: RADram kernel moved {ratio:.3}x across L1 sizes",
            app.name()
        );
    }
}

#[test]
fn table3_circuits_fit_and_clock_like_the_paper() {
    for row in experiments::table3() {
        assert!(row.les <= 256, "{}: over the per-page LE budget", row.name);
        assert!(row.speed_ns < 60.0, "{}: too slow for the 2001-era 100 MHz target", row.name);
        // Within a loose factor of the paper's synthesis results.
        let ratio = row.les as f64 / row.paper_les as f64;
        assert!((0.4..=2.0).contains(&ratio), "{}: LE ratio {ratio:.2}", row.name);
    }
}

#[test]
fn table4_correlations_echo_the_paper() {
    // Through the engine but cache-less: the test must measure, not replay.
    let runner =
        ap_bench::runner::Runner::with_engine(ap_engine::Engine::from_env().without_cache());
    let rows = experiments::table4(&runner, true);
    assert_eq!(rows.len(), 8, "the paper's Table 4 has eight kernels");
    for r in &rows {
        assert!(
            r.correlation > 0.6,
            "{}: model correlation {:.3} too weak",
            r.app.name(),
            r.correlation
        );
    }
    let get = |a: App| rows.iter().find(|r| r.app == a).unwrap().correlation;
    assert!(
        get(App::MatrixBoeing) <= get(App::MatrixSimplex),
        "boeing's irregular fill must hurt the constant-parameter model most"
    );
}

#[test]
fn figure1_regions_from_calibrated_model() {
    let pts = experiments::fig1();
    let regions: Vec<&str> = pts.iter().map(|p| p.region).collect();
    assert!(regions.contains(&"sub-page"));
    assert!(regions.contains(&"scalable"));
    assert!(regions.contains(&"saturated"));
    // Speedup is (weakly) monotone until saturation.
    let scalable: Vec<f64> =
        pts.iter().filter(|p| p.region != "saturated").map(|p| p.speedup).collect();
    for w in scalable.windows(2) {
        assert!(w[1] >= w[0] * 0.99, "speedup dipped inside the scalable region");
    }
}
