//! Property-based tests of the Section 7.4 analytic model.

use ap_analytic::{non_overlap, ConstModel, PageTimes};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ConstModel> {
    (1.0f64..10_000.0, 0.0f64..10_000.0, 1.0f64..1.0e7).prop_map(|(t_a, t_p, t_c)| ConstModel {
        t_a,
        t_p,
        t_c,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Non-overlap is never negative and never exceeds T_C.
    #[test]
    fn no_is_bounded(m in arb_model(), k in 1usize..64) {
        let no = non_overlap(&m.times(k));
        for (i, v) in no.iter().enumerate() {
            prop_assert!(*v >= 0.0, "NO({i}) negative");
            prop_assert!(*v <= m.t_c + 1e-9, "NO({i}) exceeds T_C");
        }
    }

    /// The first page's wait has a closed form: only the K-1 subsequent
    /// activations can hide its compute time.
    #[test]
    fn first_page_wait_closed_form(m in arb_model(), k in 1usize..64) {
        let no = non_overlap(&m.times(k));
        let want = (m.t_c - (k as f64 - 1.0) * m.t_a).max(0.0);
        prop_assert!((no[0] - want).abs() <= 1e-6 * m.t_c.max(1.0));
    }

    /// Total non-overlap is non-increasing in problem size: more pages give
    /// the processor more to do while waiting.
    #[test]
    fn total_no_monotone_in_k(m in arb_model(), k in 1usize..48) {
        let a: f64 = m.total_non_overlap(k);
        let b: f64 = m.total_non_overlap(k + 1);
        prop_assert!(b <= a + 1e-6, "NO grew from {a} to {b} as K went {k} -> {}", k + 1);
    }

    /// Predicted kernel time is strictly increasing in problem size.
    #[test]
    fn kernel_time_monotone(m in arb_model(), k in 1usize..48) {
        prop_assert!(m.predicted_kernel_time(k + 1) > m.predicted_kernel_time(k));
    }

    /// Kernel time is at least the serial dispatch floor and at least one
    /// page's compute time.
    #[test]
    fn kernel_time_lower_bounds(m in arb_model(), k in 1usize..64) {
        let t = m.predicted_kernel_time(k);
        prop_assert!(t + 1e-9 >= k as f64 * (m.t_a + m.t_p));
        prop_assert!(t + 1e-9 >= m.t_a + m.t_c, "cannot beat activate + compute of page 1");
    }

    /// Variable per-page times with the same totals never *reduce* the first
    /// page's wait below the constant-time equivalent when the variance is
    /// concentrated in T_C of page 1.
    #[test]
    fn front_loaded_compute_waits_longer(m in arb_model(), k in 2usize..32) {
        let base = m.times(k);
        let mut skew = base.clone();
        skew.t_c[0] *= 2.0;
        let no_base = non_overlap(&base);
        let no_skew = non_overlap(&skew);
        prop_assert!(no_skew[0] >= no_base[0]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The overlap threshold is consistent: below it NO > 0, at it NO = 0.
    #[test]
    fn overlap_threshold_is_a_boundary(m in arb_model()) {
        let limit = 1 << 22;
        let k = m.pages_for_overlap(limit);
        if k < limit {
            prop_assert!(m.total_non_overlap(k) <= 1e-9);
            if k > 1 {
                prop_assert!(m.total_non_overlap(k - 1) > 0.0);
            }
        }
    }

    /// Pearson correlation is symmetric and bounded.
    #[test]
    fn pearson_properties(xs in proptest::collection::vec(-1000.0f64..1000.0, 3..40)) {
        let ys: Vec<f64> = xs.iter().map(|v| 3.0 * v + 7.0).collect();
        let r = ap_analytic::pearson(&xs, &ys);
        // Perfect affine relation (unless degenerate).
        if xs.iter().any(|v| (v - xs[0]).abs() > 1e-9) {
            prop_assert!((r - 1.0).abs() < 1e-6);
        }
        let r2 = ap_analytic::pearson(&ys, &xs);
        prop_assert!((r - r2).abs() < 1e-9);
        prop_assert!(r.abs() <= 1.0 + 1e-9);
    }
}

#[test]
fn explicit_times_reject_mismatched_lengths() {
    let t = PageTimes { t_a: vec![1.0], t_p: vec![1.0, 2.0], t_c: vec![1.0] };
    assert!(std::panic::catch_unwind(|| non_overlap(&t)).is_err());
}
