//! The simulator must be fully deterministic: identical runs produce
//! identical cycle counts, statistics and results — the property that makes
//! every number in EXPERIMENTS.md reproducible bit-for-bit.

use ap_apps::{App, SystemKind};
use radram::RadramConfig;

#[test]
fn every_kernel_is_deterministic_on_both_systems() {
    let cfg = RadramConfig::reference();
    for app in App::ALL {
        for kind in [SystemKind::Conventional, SystemKind::Radram] {
            let a = app.run(kind, 0.7, &cfg);
            let b = app.run(kind, 0.7, &cfg);
            assert_eq!(a.kernel_cycles, b.kernel_cycles, "{} {kind} cycles", app.name());
            assert_eq!(a.total_cycles, b.total_cycles, "{} {kind} totals", app.name());
            assert_eq!(a.checksum, b.checksum, "{} {kind} results", app.name());
            assert_eq!(
                a.stats.non_overlap_cycles,
                b.stats.non_overlap_cycles,
                "{} {kind} stalls",
                app.name()
            );
            assert_eq!(
                a.stats.cpu.instructions,
                b.stats.cpu.instructions,
                "{} {kind} instruction counts",
                app.name()
            );
        }
    }
}

#[test]
fn workload_generators_are_seed_stable() {
    use ap_workloads::{database::AddressBook, dna::SequencePair, sparse::SparseMatrix};
    // Pin a few digests so accidental generator changes (which would make
    // EXPERIMENTS.md numbers drift silently) fail loudly.
    let book = AddressBook::generate(0xDB5EED, 100);
    assert_eq!(
        ap_apps::fnv1a(book.bytes()),
        ap_apps::fnv1a(AddressBook::generate(0xDB5EED, 100).bytes())
    );
    let pair = SequencePair::generate(0xDAA, 200, 0.15);
    assert_eq!(pair.lcs_length(), SequencePair::generate(0xDAA, 200, 0.15).lcs_length());
    let m = SparseMatrix::finite_element(0xB0, 300, 48);
    assert_eq!(m.nnz(), SparseMatrix::finite_element(0xB0, 300, 48).nnz());
}

#[test]
fn extension_pipelines_are_deterministic() {
    let cfg = RadramConfig::reference();
    let a = ap_apps::mpeg_decode::run(SystemKind::Radram, 0.5, &cfg);
    let b = ap_apps::mpeg_decode::run(SystemKind::Radram, 0.5, &cfg);
    assert_eq!(a.kernel_cycles, b.kernel_cycles);
    assert_eq!(a.checksum, b.checksum);

    let script = ap_workloads::array_ops::Script::generate(3, 10_000, 10);
    let p1 = ap_apps::primitives::run_script_primitives(&script, &cfg);
    let p2 = ap_apps::primitives::run_script_primitives(&script, &cfg);
    assert_eq!(p1.kernel_cycles, p2.kernel_cycles);
    assert_eq!(p1.checksum, p2.checksum);
}
