//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! `criterion` cannot be fetched from crates.io. This shim keeps the
//! `criterion_group!`/`criterion_main!` bench targets compiling and useful:
//! each registered function runs its routine a fixed number of sampled
//! iterations and prints the mean wall time. There is no statistical
//! analysis, warm-up or outlier rejection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`'s [`Bencher::iter`] routine and prints the mean per-call
    /// wall time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, total_ns: 0, iters: 0 };
        f(&mut b);
        let mean = if b.iters == 0 { 0.0 } else { b.total_ns as f64 / b.iters as f64 };
        println!("bench {name:<40} {mean:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Times the measured routine.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, accumulating elapsed wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| 2u64 + 2));
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(5);
        sample_bench(&mut c);
    }
}
