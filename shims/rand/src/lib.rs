//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! `rand` cannot be fetched from crates.io. This shim implements exactly the
//! API surface the workspace uses — `rngs::StdRng`, [`SeedableRng`] and the
//! [`RngExt`] sampling methods — on top of a deterministic SplitMix64
//! generator. Streams are reproducible across platforms and releases of this
//! shim, which is what the workloads care about; they do **not** match the
//! byte streams of the real `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic, seedable generator (SplitMix64).
    ///
    /// Drop-in for `rand::rngs::StdRng` within this workspace: seeded through
    /// [`SeedableRng::seed_from_u64`](crate::SeedableRng::seed_from_u64) and
    /// sampled through [`RngExt`](crate::RngExt).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// The low-level word source every sampling method builds on.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain, Sebastiano Vigna).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods (`rand`'s `Rng`/`RngExt` surface).
pub trait RngExt: RngCore + Sized {
    /// Samples a value of `T` from its full "standard" distribution
    /// (uniform bits for integers, `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// Types samplable from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform-over-a-range sampler. The blanket [`SampleRange`]
/// impls below delegate here; keeping them blanket (one impl per range
/// shape, like the real `rand`) is what lets untyped integer literals in
/// `random_range(0..4)` unify with the surrounding expression type.
pub trait SampleUniform: Sized {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}
sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: f64, hi: f64, inclusive: bool) -> f64 {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn values_spread_across_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
