//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! `proptest` cannot be fetched from crates.io. This shim implements the
//! subset the workspace's property tests use: the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, range/tuple/`Just`
//! strategies, [`collection::vec`], [`bool::ANY`] and [`arbitrary::any`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the test
//! name), so failures are reproducible run to run. There is **no shrinking**:
//! a failing case reports its case number and message and panics immediately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic case generation.
pub mod rng {
    /// The per-test random source strategies draw from.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for the named test; the stream depends only
        /// on the name, so reruns reproduce the same cases.
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::ProptestConfig`: only the case
    /// count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        /// Erases the strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (unweighted
    /// `prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<u32>()` etc.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` and `false` uniformly.
    pub const ANY: Any = Any;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a `#[test]`
/// that generates `cases` inputs and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::rng::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body (fails the case, not the
/// process, so the harness can report which case broke).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::string::String::from(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__av, __bv) => {
                if !(*__av == *__bv) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{:?} == {:?}`",
                        __av,
                        __bv
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__av, __bv) => {
                if !(*__av == *__bv) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}: `{:?} == {:?}`",
                        ::std::format!($($fmt)+),
                        __av,
                        __bv
                    ));
                }
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honour their bounds; tuples and maps compose.
        #[test]
        fn generated_values_in_bounds(
            x in 10u32..20,
            (lo, f) in (0i16..5, -1.0f64..1.0),
            v in crate::collection::vec(0u8..4, 1..9),
            b in crate::bool::ANY,
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0..5).contains(&lo));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 4));
            let _: bool = b; // bool::ANY yields both values across cases
        }

        #[test]
        fn oneof_and_map_compose(tag in prop_oneof![Just(1u8), 4u8..6, Just(9u8)].prop_map(|t| t * 2)) {
            prop_assert!(tag == 2 || tag == 8 || tag == 10 || tag == 18, "tag {}", tag);
        }
    }

    #[test]
    fn streams_are_reproducible() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..20).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..20).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
