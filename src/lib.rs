//! Umbrella crate for the Active Pages reproduction.
//!
//! Re-exports every subsystem so examples, integration tests and downstream
//! users need a single dependency. See the individual crates for detail:
//!
//! * [`active_pages`] — the Active Pages computation model (the paper's
//!   primary contribution).
//! * [`radram`] — the RADram (Reconfigurable Architecture DRAM)
//!   implementation of Active Pages, including the full-system simulator.
//! * [`ap_mem`] / [`ap_cpu`] — memory-hierarchy and processor substrates.
//! * [`ap_synth`] — the circuit-synthesis substrate behind Table 3.
//! * [`ap_workloads`] — deterministic workload generators.
//! * [`ap_apps`] — the six evaluation applications (conventional and
//!   Active-Page partitions).
//! * [`ap_analytic`] — the Section 7.4 analytic performance model.
//!
//! # Examples
//!
//! ```
//! use active_pages_repro::radram::{RadramConfig, System};
//!
//! let sys = System::radram(RadramConfig::reference());
//! assert_eq!(sys.config().logic_divisor, 10); // 100 MHz logic at 1 GHz CPU
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use active_pages;
pub use ap_analytic;
pub use ap_apps;
pub use ap_cpu;
pub use ap_mem;
pub use ap_risc;
pub use ap_synth;
pub use ap_workloads;
pub use radram;
